"""Runtime guardrails: deadlines, cancellation, and the degradation ladder.

The chaos contract under test: a hung kernel, a crashed or hung tile
worker, or a poisoned nonblocking queue entry must degrade a *single
operation* — with a catchable, attributed exception or a transparent
monolithic re-execution — and never wedge or corrupt the process.  Every
rung is driven deterministically through ``repro.testing.faults`` and
asserted three ways: the result (bit-identity with the clean run), the
deterministic ``guard.stats()`` counters, and the ``obs`` event stream.

The ``slow_kernel`` / ``kernel_fail`` hooks live in the resilience chain
(which the bare interpreted stack bypasses by design — chaos CI must not
be able to break the engine of last resort), so the fault-driven
deadline tests pin the ``pyjit`` engine explicitly.
"""

import contextlib
import threading
import time
import warnings

import numpy as np
import pytest

import repro as gb
from repro import guard, tiling
from repro.core.context import use_engine
from repro.exceptions import (
    JitFallbackWarning,
    KernelExecutionError,
    OperationCancelled,
    OperationTimeout,
)
from repro.testing.faults import FAULTS, FaultPlan, fault_injection

N = 48


@pytest.fixture(autouse=True)
def _clean_guard_state(monkeypatch):
    """Every test starts with no faults, no quarantine, zero counters,
    and no guard-related environment configuration."""
    for var in (
        "PYGB_FAULT", "PYGB_OP_TIMEOUT", "PYGB_WORKER_TIMEOUT",
        "PYGB_FAULT_SLEEP", "PYGB_FAULT_HANG",
    ):
        monkeypatch.delenv(var, raising=False)
    FAULTS.clear()
    guard.reset_stats()
    guard.tiling_health().reset()
    yield
    FAULTS.clear()
    guard.reset_stats()
    guard.tiling_health().reset()


def _graph(seed=7, n=N, density=0.15):
    rng = np.random.default_rng(seed)
    keep = rng.random((n, n)) < density
    r, c = np.nonzero(keep)
    return gb.Matrix((np.ones(r.size), (r, c)), shape=(n, n), dtype=np.float64)


def _operands(seed=7):
    a = _graph(seed)
    u = gb.Vector((np.ones(N), range(N)), shape=(N,), dtype=np.float64)
    return a, u


def _mxv(a, u):
    w = gb.Vector(shape=(N,), dtype=np.float64)
    with gb.ArithmeticSemiring:
        w[None] = a @ u
    return w._store.to_dict()


def _pagerank_prog():
    from repro.algorithms import pagerank

    pr = gb.Vector(shape=(N,), dtype=np.float64)
    pagerank(_graph(11, density=0.12), pr, threshold=1e-10)
    return pr._store.to_dict()


@contextlib.contextmanager
def _quiet_degrades():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", JitFallbackWarning)
        yield


# ----------------------------------------------------------------------
# deadlines and timeouts
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_slow_kernel_times_out_within_twice_budget(self, monkeypatch):
        """A kernel stalled far past the budget raises OperationTimeout
        roughly *at* the budget (cooperative checks run every 10ms), and
        the process stays fully functional afterwards."""
        monkeypatch.setenv("PYGB_FAULT_SLEEP", "10")
        budget = 0.2
        with use_engine("pyjit"):
            a, u = _operands()
            t0 = time.monotonic()
            with pytest.raises(OperationTimeout) as exc_info:
                with fault_injection("slow_kernel", rate=1.0), gb.deadline(seconds=budget):
                    _mxv(a, u)
            elapsed = time.monotonic() - t0
            assert elapsed < 2 * budget, f"timeout took {elapsed:.2f}s for {budget}s budget"
            err = exc_info.value
            assert err.op == "mxv"
            assert err.engine == "pyjit"
            assert err.elapsed is not None and err.elapsed <= elapsed
            assert err.budget == budget
            monkeypatch.delenv("PYGB_FAULT_SLEEP")
            # the stall was one op's problem, not the process's
            assert _mxv(a, u) == _mxv(a, u)
        assert guard.stats()["timeouts_total"] == 1

    def test_env_op_timeout(self, monkeypatch):
        """$PYGB_OP_TIMEOUT guards every op with no scope in sight."""
        monkeypatch.setenv("PYGB_FAULT_SLEEP", "10")
        with use_engine("pyjit"):
            a, u = _operands()
            monkeypatch.setenv("PYGB_OP_TIMEOUT", "0.15")
            with pytest.raises(OperationTimeout) as exc_info:
                with fault_injection("slow_kernel", rate=1.0):
                    _mxv(a, u)
        assert exc_info.value.budget == 0.15

    def test_expired_scope_fails_fast(self, engine):
        """Ops after a blown budget never start: they raise immediately
        with elapsed == 0 instead of running on borrowed time."""
        a, u = _operands()
        with pytest.raises(OperationTimeout) as exc_info:
            with gb.deadline(seconds=0.01):
                time.sleep(0.03)  # burn the budget outside any op
                _mxv(a, u)
        assert exc_info.value.elapsed == 0.0
        assert "not started" in str(exc_info.value)

    def test_nested_scopes_take_minimum(self):
        with gb.deadline(seconds=10) as outer:
            with gb.deadline(seconds=60) as inner:
                # the enclosing 10s budget binds, not the inner 60s
                assert inner.deadline_at == outer.deadline_at
            with gb.deadline(seconds=0.001) as tight:
                assert tight.deadline_at < outer.deadline_at

    def test_scope_survives_timeout_and_blocks_followups(self, monkeypatch):
        """One expiry poisons the rest of the scope (fail-fast), but the
        next scope starts fresh."""
        monkeypatch.setenv("PYGB_FAULT_SLEEP", "10")
        with use_engine("pyjit"):
            a, u = _operands()
            with gb.deadline(seconds=0.1) as dl:
                with pytest.raises(OperationTimeout):
                    with fault_injection("slow_kernel", rate=1.0):
                        _mxv(a, u)
                assert dl.expired
                with pytest.raises(OperationTimeout):
                    _mxv(a, u)  # healthy op, but the budget is gone
            monkeypatch.delenv("PYGB_FAULT_SLEEP")
            with gb.deadline(seconds=30):
                assert _mxv(a, u)

    def test_bad_timeout_value_warns_and_ignores(self, monkeypatch):
        monkeypatch.setenv("PYGB_OP_TIMEOUT", "banana")
        with pytest.warns(UserWarning, match="PYGB_OP_TIMEOUT"):
            assert guard.op_timeout() is None


class TestCancellation:
    def test_cancel_from_another_thread(self, monkeypatch):
        """A pure-cancel scope (no timer) cancelled mid-op from another
        thread raises OperationCancelled, never OperationTimeout."""
        monkeypatch.setenv("PYGB_FAULT_SLEEP", "10")
        with use_engine("pyjit"):
            a, u = _operands()
            with pytest.raises(OperationCancelled) as exc_info:
                with gb.deadline() as dl:
                    timer = threading.Timer(0.1, dl.cancel)
                    timer.start()
                    try:
                        with fault_injection("slow_kernel", rate=1.0):
                            _mxv(a, u)
                    finally:
                        timer.cancel()
        assert exc_info.value.op == "mxv"
        assert guard.stats()["cancels_total"] >= 1
        assert guard.stats()["timeouts_total"] == 0

    def test_cancelled_scope_fails_fast(self, engine):
        a, u = _operands()
        with pytest.raises(OperationCancelled):
            with gb.deadline() as dl:
                dl.cancel()
                _mxv(a, u)

    def test_no_guard_is_free_of_side_effects(self, engine):
        """Without a scope or env timeout the guard layer must not
        change results or record anything."""
        a, u = _operands()
        assert _mxv(a, u)
        s = guard.stats()
        assert s["timeouts_total"] == 0 and s["cancels_total"] == 0


# ----------------------------------------------------------------------
# the degradation ladder: tiled fan-out -> monolithic -> quarantine
# ----------------------------------------------------------------------


class TestDegradationLadder:
    def test_worker_crash_degrades_bit_identical(self, engine):
        """A tile worker crashing mid-PageRank must yield byte-identical
        ranks via monolithic re-execution, recorded as a guard.degrade
        obs event and a deterministic counter."""
        with gb.tiled(tiles=1):
            clean = _pagerank_prog()
        with _quiet_degrades(), gb.tracing() as tr:
            with gb.tiled(tiles=4, workers=2):
                with fault_injection("worker_crash", rate=1.0, times=1):
                    chaotic = _pagerank_prog()
        assert chaotic == clean
        assert guard.stats()["degrades_total"] >= 1
        assert tr.stats.snapshot()["guard"].get("guard.degrade", 0) >= 1

    def test_worker_hang_detected_and_degraded(self, engine, monkeypatch):
        """A hung worker trips the bounded future wait instead of
        stalling the dispatch forever; the op still completes correctly."""
        monkeypatch.setenv("PYGB_WORKER_TIMEOUT", "0.5")
        a, u = _operands()
        with gb.tiled(tiles=1):
            clean = _mxv(a, u)
        t0 = time.monotonic()
        with _quiet_degrades(), gb.tiled(tiles=4, workers=2):
            with fault_injection("worker_hang", rate=1.0, times=1):
                chaotic = _mxv(a, u)
        assert time.monotonic() - t0 < 10.0  # nowhere near the 30s hang
        assert chaotic == clean
        assert guard.stats()["degrades_total"] >= 1

    def test_repeated_failures_quarantine_tiling(self, engine, capsys):
        """Fan-out failures circuit-break tiling for that op signature:
        dispatches inside the backoff window forward monolithically up
        front, and ``repro doctor`` reports the quarantined signature."""
        a, u = _operands()
        with gb.tiled(tiles=1):
            clean = _mxv(a, u)
        with _quiet_degrades(), gb.tiled(tiles=4, workers=2):
            with fault_injection("worker_crash", rate=1.0):
                assert _mxv(a, u) == clean
            assert guard.tiling_quarantined("mxv")
            assert guard.stats()["quarantines_total"] == 1
            forwarded_before = tiling.stats()["forwarded_total"]
            assert _mxv(a, u) == clean  # no faults, but quarantined
            assert tiling.stats()["forwarded_total"] > forwarded_before
        from repro.__main__ import main

        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "quarantined tiling ops" in out
        assert "mxv" in out and "injected tile-worker crash" in out

    def test_deadline_expiry_is_not_degraded(self, monkeypatch):
        """A deadline blown inside the fan-out must NOT trigger a
        monolithic re-run (which would blow the budget a second time):
        it surfaces as OperationTimeout and leaves tiling healthy."""
        monkeypatch.setenv("PYGB_FAULT_SLEEP", "10")
        with use_engine("pyjit"):
            a, u = _operands()
            with gb.tiled(tiles=4, workers=2):
                with pytest.raises(OperationTimeout):
                    with fault_injection("slow_kernel", rate=1.0), gb.deadline(seconds=0.15):
                        _mxv(a, u)
        assert guard.stats()["degrades_total"] == 0
        assert not guard.tiling_quarantined("mxv")

    def test_interrupt_mid_fanout_leaves_pool_reusable(self, engine):
        """S1 regression: an interrupt (or any error) during fan-out
        cancels the remaining futures and leaves the shared pool — or a
        fresh replacement — fully usable; no orphaned tasks keep bumping
        the tiling counters afterwards."""
        a, u = _operands()
        with gb.tiled(tiles=4, workers=2):
            boom = threading.Event()

            def interrupting_task():
                if not boom.is_set():
                    boom.set()
                    raise KeyboardInterrupt()
                time.sleep(0.01)
                return 1

            with pytest.raises(KeyboardInterrupt):
                tiling.run_tile_tasks([interrupting_task] * 8)
            time.sleep(0.1)  # let any stragglers drain
            tasks_after_cleanup = tiling.stats()["tile_tasks"]
            assert tiling.run_tile_tasks([lambda: 2] * 4) == [2, 2, 2, 2]
            assert tiling.stats()["tile_tasks"] == tasks_after_cleanup + 4
            with gb.tiled(tiles=1):
                clean = _mxv(a, u)
            assert _mxv(a, u) == clean


# ----------------------------------------------------------------------
# runtime kernel faults through the resilience chain
# ----------------------------------------------------------------------


class TestKernelFaults:
    def test_kernel_fail_falls_back_down_the_chain(self):
        """A runtime kernel crash on the primary engine retries on the
        next engine in the fallback chain, transparently."""
        with use_engine("pyjit"):
            a, u = _operands()
            clean = _mxv(a, u)
            with fault_injection("kernel_fail", rate=1.0, times=1):
                assert _mxv(a, u) == clean

    def test_kernel_fail_exhausting_chain_raises(self):
        with use_engine("pyjit"):
            a, u = _operands()
            with fault_injection("kernel_fail", rate=1.0):
                with pytest.raises(KernelExecutionError, match="injected kernel failure"):
                    _mxv(a, u)
            # rules cleared: next dispatch is healthy
            _mxv(a, u)


# ----------------------------------------------------------------------
# nonblocking mode under runtime faults (S3)
# ----------------------------------------------------------------------


class TestNonblockingFaults:
    def _three_stores(self):
        u = gb.Vector((np.arange(1.0, N + 1), range(N)), shape=(N,), dtype=np.float64)
        v = gb.Vector((np.ones(N), range(N)), shape=(N,), dtype=np.float64)
        w1 = gb.Vector(shape=(N,), dtype=np.float64)
        w2 = gb.Vector(shape=(N,), dtype=np.float64)
        w3 = gb.Vector(shape=(N,), dtype=np.float64)
        with gb.BinaryOp("Plus"):
            w1[None] = u + v
        with gb.BinaryOp("Times"):
            w2[None] = u * v
        with gb.BinaryOp("Minus"):
            w3[None] = u + v
        return w1, w2, w3

    def test_flush_isolates_poisoned_entry(self):
        """One queue entry whose replay crashes must not drop or
        double-apply its neighbours: the rest of the queue replays in
        order, the error is counted, and the first exception re-raises
        after the drain (differential vs the eager run)."""
        from repro.core.nonblocking import stats as nb_stats

        eager = tuple(w._store.to_dict() for w in self._three_stores())
        errors_before = nb_stats()["flush_errors"]
        with use_engine("pyjit"):
            with gb.nonblocking():
                from repro.core.nonblocking import pending

                w1, w2, w3 = self._three_stores()
                assert pending() == 3
                # exhaust the fallback chain (pyjit + interpreted) for
                # exactly the first replayed entry
                FAULTS.install("kernel_fail", rate=1.0, times=2)
                with pytest.raises(KernelExecutionError):
                    gb.wait()
                FAULTS.clear()
        assert nb_stats()["flush_errors"] == errors_before + 1
        # the poisoned first store kept its pre-statement value; the
        # stores queued after it still applied, in order
        assert w1._store.to_dict() == {}
        assert w2._store.to_dict() == eager[1]
        assert w3._store.to_dict() == eager[2]

    def test_queue_overflow_fault_forces_early_flush(self, engine):
        """The injected overflow flushes mid-block; results must match
        the eager run exactly."""
        from repro.core.nonblocking import stats as nb_stats

        eager = tuple(w._store.to_dict() for w in self._three_stores())
        flushes_before = nb_stats()["flushes"]
        with fault_injection("queue_overflow", rate=1.0, times=1):
            with gb.nonblocking():
                chaotic = tuple(w._store.to_dict() for w in self._three_stores())
        assert chaotic == eager
        assert nb_stats()["flushes"] > flushes_before

    def test_timeout_during_flush_still_drains_queue(self, monkeypatch):
        """A deadline expiring mid-flush poisons the in-flight entry but
        the queue still fully drains (no entry is silently dropped into
        a later, unrelated flush)."""
        from repro.core.nonblocking import pending

        monkeypatch.setenv("PYGB_FAULT_SLEEP", "10")
        with use_engine("pyjit"):
            with pytest.raises(OperationTimeout):
                with gb.deadline(seconds=0.15):
                    with gb.nonblocking():
                        self._three_stores()
                        FAULTS.install("slow_kernel", rate=1.0, times=1)
        FAULTS.clear()
        assert pending() == 0  # nothing left queued after the unwind


# ----------------------------------------------------------------------
# fault configuration (S2) and observability rollup
# ----------------------------------------------------------------------


class TestFaultConfig:
    def test_unknown_kind_message_identical_both_paths(self):
        """Programmatic install and $PYGB_FAULT parsing reject unknown
        kinds with the *same* exception and message."""
        from repro.testing.faults import _parse_env

        plan = FaultPlan()
        with pytest.raises(ValueError) as via_install:
            plan.install("kernel_fial")
        with pytest.raises(ValueError) as via_env:
            _parse_env("kernel_fial:0.5")
        assert str(via_install.value) == str(via_env.value)
        assert "kernel_fial" in str(via_env.value)
        assert "kernel_fail" in str(via_env.value)  # lists the valid kinds

    def test_env_var_drives_runtime_faults(self, engine, monkeypatch):
        a, u = _operands()
        with gb.tiled(tiles=1):
            clean = _mxv(a, u)
        monkeypatch.setenv("PYGB_FAULT", "worker_crash:1.0")
        with _quiet_degrades(), gb.tiled(tiles=4, workers=2):
            assert _mxv(a, u) == clean
        assert guard.stats()["degrades_total"] >= 1


class TestObservability:
    def test_guard_events_roll_up_into_stats(self, monkeypatch):
        from repro.obs.stats import merge_stats, render_stats

        monkeypatch.setenv("PYGB_FAULT_SLEEP", "10")
        with use_engine("pyjit"):
            a, u = _operands()
            with gb.tracing() as tr:
                with pytest.raises(OperationTimeout):
                    with fault_injection("slow_kernel", rate=1.0), gb.deadline(seconds=0.1):
                        _mxv(a, u)
        snap = tr.stats.snapshot()
        assert snap["guard"].get("guard.timeout") == 1
        merged = merge_stats(snap, snap)
        assert merged["guard"]["guard.timeout"] == 2
        assert "runtime guardrails" in render_stats(snap)

    def test_doctor_reports_guardrails_when_clean(self, capsys):
        from repro.__main__ import main

        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "guardrails:" in out
        assert "guard activity:" in out
        assert "quarantined tiling ops: none" in out


# ----------------------------------------------------------------------
# the C++ engine's cooperative cancellation flag
# ----------------------------------------------------------------------


@pytest.mark.cpp
class TestCppCancellation:
    @pytest.fixture(autouse=True)
    def _require_toolchain(self):
        from repro.jit.cppengine import toolchain_works

        if not toolchain_works():
            pytest.skip("no working C++ toolchain")

    def test_flag_round_trip_over_ffi(self):
        """Asserting the per-library atomic makes the kernel bail with
        the -2 sentinel (surfaced as OperationCancelled, not a corrupt
        result); clearing it restores normal execution."""
        a, u = _operands(3)
        with use_engine("cpp"):
            clean = _mxv(a, u)  # compiles + registers the library
            assert guard._CANCEL_LIBS, "cpp engine did not register its cancel flag"
            lib = guard._CANCEL_LIBS[-1]
            lib.pygb_request_cancel(1)
            try:
                assert lib.pygb_cancel_requested() == 1
                with pytest.raises(OperationCancelled):
                    _mxv(a, u)
            finally:
                lib.pygb_request_cancel(0)
            assert _mxv(a, u) == clean

    def test_deadline_cancels_running_cpp_kernel(self, monkeypatch):
        """End to end: the watchdog thread asserts the flag while the
        C++ kernel runs; the op raises OperationTimeout in bounded time
        (the serial loops poll every 1024 rows and the writeback checks
        once more, so even a coarse poll interval converts the result to
        a timeout instead of surfacing a stale container)."""
        rng = np.random.default_rng(5)
        n = 1500
        keep = rng.random((n, n)) < 0.03
        r, c = np.nonzero(keep)
        a = gb.Matrix((np.ones(r.size), (r, c)), shape=(n, n), dtype=np.float64)
        b = gb.Matrix((np.ones(r.size), (c, r)), shape=(n, n), dtype=np.float64)
        monkeypatch.setenv("PYGB_PARALLEL", "0")  # serial loops poll the flag
        with use_engine("cpp"):
            cmat = gb.Matrix(shape=(n, n), dtype=np.float64)
            with gb.ArithmeticSemiring:  # warm the kernel cache unguarded
                cmat[None] = a @ b
            gb.wait()  # in nonblocking mode: flush the warm-up eagerly
            with pytest.raises(OperationTimeout):
                with gb.deadline(seconds=0.05):
                    d = gb.Matrix(shape=(n, n), dtype=np.float64)
                    with gb.ArithmeticSemiring:
                        d[None] = a @ b
                    gb.wait()  # force the deferred statement under the budget
            # the flag must be clear again: the next dispatch succeeds
            e = gb.Matrix(shape=(n, n), dtype=np.float64)
            with gb.ArithmeticSemiring:
                e[None] = a @ b
            gb.wait()
