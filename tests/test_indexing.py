"""Subscript semantics, differentially across engines (property-style).

Random subscripts — negative, out-of-range, empty, duplicated, unsorted,
sliced — must produce *identical results or identical exceptions* on
every engine, for both extract (``v[idx]``) and assign (``v[idx] = s``).
Out-of-range indices must raise :class:`IndexOutOfBounds` at parse time
on every engine (the C++ engine used to read/write out of bounds
silently — the bug this suite pins down).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.jit.cppengine import toolchain_works

N = 6

ENGINES = ["interpreted", "pyjit"] + (["cpp"] if toolchain_works() else [])


@st.composite
def subscript(draw):
    """A random 1-D subscript: int, slice, or integer array — any of
    which may be negative, out of range, empty, duplicated or unsorted."""
    kind = draw(st.sampled_from(["int", "slice", "array"]))
    if kind == "int":
        return draw(st.integers(-N - 2, N + 2))
    if kind == "slice":
        lo = draw(st.one_of(st.none(), st.integers(-N - 2, N + 2)))
        hi = draw(st.one_of(st.none(), st.integers(-N - 2, N + 2)))
        step = draw(st.sampled_from([None, 1, 2, -1]))
        return slice(lo, hi, step)
    size = draw(st.integers(0, 2 * N))
    return draw(
        st.lists(st.integers(-N - 2, N + 2), min_size=size, max_size=size)
    )


@st.composite
def vector_entries(draw):
    n = draw(st.integers(0, N))
    idx = draw(st.lists(st.integers(0, N - 1), min_size=n, max_size=n, unique=True))
    vals = draw(st.lists(st.integers(-9, 9), min_size=n, max_size=n))
    return sorted(zip(idx, vals))


def _vector(entries):
    return gb.Vector(
        ([v for _, v in entries], [i for i, _ in entries]), shape=(N,), dtype=np.int64
    )


def _normalise(obj):
    """Comparable snapshot of an extract/assign result."""
    store = getattr(obj, "_store", None)
    if store is not None:
        return ("container", obj.shape, store.to_dict())
    return ("scalar", obj)


def _outcome(fn):
    """(result, None) on success, (None, exception type name) on error —
    gb-level exceptions only; anything else is a real bug and propagates."""
    try:
        return _normalise(fn()), None
    except gb.GraphBLASError as exc:
        return None, type(exc).__name__


def _extract(entries, sub):
    v = _vector(entries)
    return _outcome(lambda: v[sub].new() if hasattr(v[sub], "new") else v[sub])


def _assign(entries, sub):
    def run():
        v = _vector(entries)
        v[sub] = 7
        return v

    return _outcome(run)


class TestSubscriptFuzz:
    @settings(max_examples=120, deadline=None)
    @given(entries=vector_entries(), sub=subscript())
    def test_extract_agrees_across_engines(self, entries, sub):
        outcomes = {}
        for name in ENGINES:
            with gb.use_engine(name):
                outcomes[name] = _extract(entries, sub)
        baseline = outcomes["interpreted"]
        for name, got in outcomes.items():
            assert got == baseline, f"{name} disagrees with interpreted on {sub!r}"

    @settings(max_examples=120, deadline=None)
    @given(entries=vector_entries(), sub=subscript())
    def test_assign_agrees_across_engines(self, entries, sub):
        outcomes = {}
        for name in ENGINES:
            with gb.use_engine(name):
                outcomes[name] = _assign(entries, sub)
        baseline = outcomes["interpreted"]
        for name, got in outcomes.items():
            assert got == baseline, f"{name} disagrees with interpreted on {sub!r}"


@pytest.fixture(params=ENGINES)
def any_engine(request):
    with gb.use_engine(request.param):
        yield request.param


class TestOutOfBounds:
    """Explicit parse-time bounds checks (every engine, extract+assign)."""

    def test_vector_extract_positive_oob(self, any_engine):
        v = _vector([(0, 1), (1, 2)])
        with pytest.raises(gb.IndexOutOfBounds):
            v[[0, N]].new()

    def test_vector_extract_negative_oob(self, any_engine):
        v = _vector([(0, 1), (1, 2)])
        with pytest.raises(gb.IndexOutOfBounds):
            v[[-N - 1]].new()

    def test_vector_assign_oob(self, any_engine):
        v = _vector([(0, 1)])
        with pytest.raises(gb.IndexOutOfBounds):
            v[[1, N + 3]] = 5

    def test_vector_scalar_subscript_oob(self, any_engine):
        v = _vector([(0, 1)])
        with pytest.raises(gb.IndexOutOfBounds):
            v[N]
        with pytest.raises(gb.IndexOutOfBounds):
            v[-N - 1]

    def test_matrix_extract_oob(self, any_engine):
        a = gb.Matrix(([1.0, 2.0], ([0, 1], [1, 0])), shape=(3, 3))
        with pytest.raises(gb.IndexOutOfBounds):
            a[[0, 3], [0, 1]].new()
        with pytest.raises(gb.IndexOutOfBounds):
            a[[0, 1], [0, -4]].new()

    def test_matrix_assign_oob(self, any_engine):
        a = gb.Matrix(([1.0], ([0], [0])), shape=(3, 3))
        with pytest.raises(gb.IndexOutOfBounds):
            a[[0, 5], [0, 1]] = 9.0

    def test_negative_indices_resolve(self, any_engine):
        """In-range negative indices wrap (numpy semantics), not raise."""
        v = _vector([(i, i + 1) for i in range(N)])
        out = v[[-1, -N]].new()
        assert out._store.to_dict() == {0: N, 1: 1}

    def test_message_names_offending_index(self, any_engine):
        v = _vector([(0, 1)])
        with pytest.raises(gb.IndexOutOfBounds, match=str(N + 4)):
            v[[N + 4]]
