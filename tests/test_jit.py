"""JIT-layer tests: kernel specs, the memory→disk→compile cache of the
paper's Fig. 9, Python code generation, and cross-process disk-cache
persistence."""

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro as gb
from repro.backend.kernels import OpDesc
from repro.backend.svector import SparseVector
from repro.exceptions import CompilationError
from repro.jit.cache import JitCache
from repro.jit.pycodegen import GENERATORS, generate_source
from repro.jit.pyengine import PyJitEngine
from repro.jit.spec import CODEGEN_VERSION, KernelSpec


class TestKernelSpec:
    def test_params_canonicalised_and_sorted(self):
        s1 = KernelSpec.make("mxv", add="Plus", mult="Times", ta=True)
        s2 = KernelSpec.make("mxv", ta=True, mult="Times", add="Plus")
        assert s1 == s2
        assert s1.key == s2.key
        assert s1.key_hash == s2.key_hash

    def test_different_params_different_hash(self):
        s1 = KernelSpec.make("mxv", add="Plus")
        s2 = KernelSpec.make("mxv", add="Min")
        assert s1.key_hash != s2.key_hash

    def test_flags_and_none_canonical(self):
        s = KernelSpec.make("mxv", ta=False, accum=None)
        assert s.get("ta") == "0"
        assert s.get("accum") == "none"
        assert not s.flag("ta")

    def test_hash_is_stable_across_processes(self):
        # the disk cache relies on this: same spec -> same file name
        code = textwrap.dedent(
            """
            from repro.jit.spec import KernelSpec
            print(KernelSpec.make("mxv", add="Plus", mult="Times", a="float64").key_hash)
            """
        )
        out1 = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        ).stdout.strip()
        local = KernelSpec.make("mxv", add="Plus", mult="Times", a="float64").key_hash
        assert out1 == local

    def test_version_in_key(self):
        s = KernelSpec.make("mxv")
        assert f"v{CODEGEN_VERSION}:" in s.key

    def test_cxx_defines(self):
        s = KernelSpec.make("mxv", a="float64", add="Plus", mask="none")
        defines = s.cxx_defines()
        assert "-DA_TYPE=double" in defines
        assert "-DADD=Plus" in defines
        assert "-DPYGB_FUNC_MXV" in defines

    def test_dtype_accessor(self):
        s = KernelSpec.make("mxv", a="int32")
        assert s.dtype("a") == np.int32
        assert s.dtype("missing") is None


class TestPyCodegen:
    def _spec(self, func, **extra):
        base = dict(
            a="float64", b="float64", u="float64", c="float64",
            t_dtype="float64", p="float64", add="Plus", mult="Times",
            op="Plus", uop="Identity", rop="Plus",
            mask="none", comp=False, repl=False, accum="none",
            ta=False, tb=False, form="unary", side="none",
        )
        base.update(extra)
        return KernelSpec.make(func, **base)

    @pytest.mark.parametrize("func", sorted(GENERATORS))
    def test_every_generator_produces_compilable_source(self, func):
        extra = {}
        if func.startswith("apply"):
            extra["op"] = "Identity"
        elif func == "select_mat":
            extra["op"] = "Tril"
        elif func == "select_vec":
            extra["op"] = "NonZero"
        src = generate_source(self._spec(func, **extra))
        compile(src, f"<{func}>", "exec")  # syntax check

    def test_header_records_spec_and_defines(self):
        src = generate_source(self._spec("mxv"))
        assert "spec: v" in src
        assert "g++" in src and "-DA_TYPE=double" in src

    def test_unknown_func_raises(self):
        with pytest.raises(CompilationError):
            generate_source(KernelSpec.make("frobnicate"))

    def test_masked_variant_differs_from_unmasked(self):
        plain = generate_source(self._spec("mxv"))
        masked = generate_source(self._spec("mxv", mask="value", repl=True))
        assert plain != masked
        assert "restrict" in masked and "restrict" not in plain

    def test_accum_variant_binds_operator(self):
        src = generate_source(self._spec("mxv", accum="Min"))
        assert '_ops.BINARY_OPS["Min"]' in src


class TestJitCache:
    def test_lookup_order_memory_disk_compile(self, tmp_path):
        cache = JitCache(tmp_path)
        spec = KernelSpec.make(
            "mxv", a="float64", u="float64", c="float64", t_dtype="float64",
            add="Plus", mult="Times", ta=False,
            mask="none", comp=False, repl=False, accum="none",
        )
        mod1 = cache.get_module(spec, generate_source)
        assert cache.stats.compiles == 1
        mod2 = cache.get_module(spec, generate_source)
        assert mod2 is mod1
        assert cache.stats.memory_hits == 1
        cache.clear_memory()
        mod3 = cache.get_module(spec, generate_source)
        assert cache.stats.disk_hits == 1
        assert mod3 is not mod1
        assert mod3.run is not None

    def test_artifact_on_disk(self, tmp_path):
        cache = JitCache(tmp_path)
        spec = KernelSpec.make(
            "reduce_vec_scalar", a="float64", op="Plus"
        )
        cache.get_module(spec, generate_source)
        files = list(Path(tmp_path).glob("pygb_reduce_vec_scalar_*.py"))
        assert len(files) == 1

    def test_clear_disk(self, tmp_path):
        cache = JitCache(tmp_path)
        spec = KernelSpec.make("reduce_vec_scalar", a="float64", op="Plus")
        cache.get_module(spec, generate_source)
        cache.clear_disk()
        assert not list(Path(tmp_path).glob("pygb_*"))
        cache.get_module(spec, generate_source)
        assert cache.stats.compiles == 2

    def test_stats_snapshot_and_reset(self, tmp_path):
        cache = JitCache(tmp_path)
        spec = KernelSpec.make("reduce_vec_scalar", a="float64", op="Plus")
        cache.get_module(spec, generate_source)
        snap = cache.stats.snapshot()
        assert snap["compiles"] == 1
        assert snap["per_func"] == {"reduce_vec_scalar": 1}
        assert snap["generate_seconds"] >= 0.0
        cache.stats.reset()
        assert cache.stats.snapshot()["compiles"] == 0

    def test_broken_generated_module_raises_compilation_error(self, tmp_path):
        cache = JitCache(tmp_path)
        spec = KernelSpec.make("reduce_vec_scalar", a="float64", op="Plus")
        with pytest.raises(CompilationError):
            cache.get_module(spec, lambda s: "this is not ( valid python")


class TestPyJitEngine:
    def test_identical_calls_reuse_module(self, tmp_path):
        eng = PyJitEngine(JitCache(tmp_path))
        u = SparseVector.from_coo(5, [0, 2], [1.0, 2.0])
        w = SparseVector.empty(5, np.float64)
        eng.ewise_add_vec(w, u, u, "Plus", OpDesc())
        eng.ewise_add_vec(w, u, u, "Plus", OpDesc())
        assert eng.cache.stats.compiles == 1
        assert eng.cache.stats.memory_hits == 1

    def test_different_dtypes_compile_separately(self, tmp_path):
        # Sec. V: the module is keyed on operand data types
        eng = PyJitEngine(JitCache(tmp_path))
        uf = SparseVector.from_coo(5, [0], [1.0])
        ui = SparseVector.from_coo(5, [0], [1], dtype=np.int64)
        eng.ewise_add_vec(SparseVector.empty(5, np.float64), uf, uf, "Plus", OpDesc())
        eng.ewise_add_vec(SparseVector.empty(5, np.int64), ui, ui, "Plus", OpDesc())
        assert eng.cache.stats.compiles == 2

    def test_different_descriptors_compile_separately(self, tmp_path):
        eng = PyJitEngine(JitCache(tmp_path))
        u = SparseVector.from_coo(5, [0], [1.0])
        mask = SparseVector.from_coo(5, [0], [True], dtype=np.bool_)
        eng.ewise_add_vec(SparseVector.empty(5, np.float64), u, u, "Plus", OpDesc())
        eng.ewise_add_vec(
            SparseVector.empty(5, np.float64), u, u, "Plus", OpDesc(mask=mask)
        )
        assert eng.cache.stats.compiles == 2

    def test_disk_cache_shared_across_processes(self, tmp_path):
        """A fresh interpreter hits the disk cache, not the compiler —
        'the cost of compiling the code can be amortized over future
        runs of the same code' (Sec. V)."""
        code = textwrap.dedent(
            f"""
            import numpy as np
            from repro.backend.kernels import OpDesc
            from repro.backend.svector import SparseVector
            from repro.jit.cache import JitCache
            from repro.jit.pyengine import PyJitEngine
            eng = PyJitEngine(JitCache({str(tmp_path)!r}))
            u = SparseVector.from_coo(5, [0], [1.0])
            eng.ewise_add_vec(SparseVector.empty(5, np.float64), u, u, "Plus", OpDesc())
            print(eng.cache.stats.compiles, eng.cache.stats.disk_hits)
            """
        )
        out1 = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True,
            cwd="/root/repo",
        ).stdout.split()
        out2 = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True,
            cwd="/root/repo",
        ).stdout.split()
        assert out1 == ["1", "0"]  # first process compiles
        assert out2 == ["0", "1"]  # second process reads the disk artifact


class TestEngineSelection:
    def test_default_engine_is_pyjit(self):
        import os

        if os.environ.get("PYGB_BACKEND", "pyjit") == "pyjit":
            assert gb.current_backend_engine().name == "pyjit"

    def test_use_engine_scoped(self):
        with gb.use_engine("interpreted"):
            assert gb.current_backend_engine().name == "interpreted"

    def test_unknown_engine_rejected(self):
        with pytest.raises(gb.BackendUnavailable):
            gb.use_engine("turbo")

    def test_engines_agree_on_results(self):
        a = gb.Matrix([[1.0, 2.0], [3.0, 4.0]])
        results = []
        for name in ("interpreted", "pyjit"):
            with gb.use_engine(name):
                results.append(gb.Matrix(a @ a).to_numpy())
        assert np.array_equal(results[0], results[1])
