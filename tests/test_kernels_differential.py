"""Differential tests: every vectorised kernel (under both the
interpreted and the Python-JIT engines) against the naive dict-of-keys
reference implementation, across randomized inputs and the full grid of
descriptor variants (mask × complement × replace × accumulate)."""

import numpy as np
import pytest

import repro as gb
from repro.backend import reference as R
from repro.backend.kernels import OpDesc
from repro.backend.smatrix import SparseMatrix
from repro.backend.svector import SparseVector

from helpers import mat_from_dict, random_mat_dict, random_vec_dict, vec_from_dict

N = 12  # container dimension for randomized cases


def _vec_store(d, size, dtype=np.float64):
    return vec_from_dict(d, size, dtype)._store


def _mat_store(d, nrows, ncols, dtype=np.float64):
    return mat_from_dict(d, nrows, ncols, dtype)._store


def _approx_eq(got: dict, want: dict):
    assert set(got) == set(want), f"patterns differ: {sorted(got)} vs {sorted(want)}"
    for k in want:
        assert got[k] == pytest.approx(want[k], rel=1e-12, abs=1e-12), (k, got[k], want[k])


DESCS = [
    dict(mask=False, comp=False, repl=False, accum=None),
    dict(mask=False, comp=False, repl=False, accum="Plus"),
    dict(mask=True, comp=False, repl=False, accum=None),
    dict(mask=True, comp=True, repl=False, accum=None),
    dict(mask=True, comp=False, repl=True, accum=None),
    dict(mask=True, comp=True, repl=True, accum=None),
    dict(mask=True, comp=False, repl=False, accum="Plus"),
    dict(mask=True, comp=True, repl=True, accum="Min"),
]


def _make_desc(dcfg, mask_store):
    return OpDesc(
        mask=mask_store if dcfg["mask"] else None,
        complement=dcfg["comp"],
        replace=dcfg["repl"],
        accum=dcfg["accum"],
    )


def _ref_final_vec(c, t, dcfg, mask, dtype=np.float64):
    return R.ref_finalize_vec(
        c, t, N, dtype,
        mask if dcfg["mask"] else None,
        dcfg["comp"], dcfg["repl"], dcfg["accum"],
    )


def _ref_final_mat(c, t, dcfg, mask, shape=(N, N), dtype=np.float64):
    return R.ref_finalize_mat(
        c, t, shape, dtype,
        mask if dcfg["mask"] else None,
        dcfg["comp"], dcfg["repl"], dcfg["accum"],
    )


@pytest.mark.parametrize("dcfg", DESCS)
@pytest.mark.parametrize("semiring", [("Plus", "Times"), ("Min", "Plus"), ("Max", "First")])
def test_mxv(engine, rng, dcfg, semiring):
    add, mult = semiring
    a = random_mat_dict(rng, N, N)
    u = random_vec_dict(rng, N)
    c = random_vec_dict(rng, N)
    mask = random_vec_dict(rng, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.mxv(
        _vec_store(c, N), _mat_store(a, N, N), _vec_store(u, N),
        add, mult, _make_desc(dcfg, _vec_store(mask, N, np.bool_)),
    )
    want = _ref_final_vec(c, R.ref_mxv(a, u, add, mult), dcfg, mask)
    _approx_eq(got.to_dict(), want)


@pytest.mark.parametrize("dcfg", DESCS[:4])
def test_mxv_transposed(engine, rng, dcfg):
    a = random_mat_dict(rng, N, N)
    u = random_vec_dict(rng, N)
    c = random_vec_dict(rng, N)
    mask = random_vec_dict(rng, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.mxv(
        _vec_store(c, N), _mat_store(a, N, N), _vec_store(u, N),
        "Plus", "Times", _make_desc(dcfg, _vec_store(mask, N, np.bool_)), ta=True,
    )
    want = _ref_final_vec(
        c, R.ref_mxv(R.ref_transpose_dict(a), u, "Plus", "Times"), dcfg, mask
    )
    _approx_eq(got.to_dict(), want)


@pytest.mark.parametrize("dcfg", DESCS)
def test_vxm(engine, rng, dcfg):
    a = random_mat_dict(rng, N, N)
    u = random_vec_dict(rng, N)
    c = random_vec_dict(rng, N)
    mask = random_vec_dict(rng, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.vxm(
        _vec_store(c, N), _vec_store(u, N), _mat_store(a, N, N),
        "Plus", "Times", _make_desc(dcfg, _vec_store(mask, N, np.bool_)),
    )
    want = _ref_final_vec(c, R.ref_vxm(u, a, "Plus", "Times"), dcfg, mask)
    _approx_eq(got.to_dict(), want)


def test_vxm_noncommutative_mult_order(engine, rng):
    # u ⊗ A(k, j): the vector value must be the LEFT operand of Minus
    u = {0: 10.0}
    a = {(0, 0): 3.0}
    eng = gb.current_backend_engine()
    got = eng.vxm(
        _vec_store({}, N), _vec_store(u, N), _mat_store(a, N, N),
        "Plus", "Minus", OpDesc(),
    )
    assert got.to_dict()[0] == 7.0


@pytest.mark.parametrize("dcfg", DESCS)
@pytest.mark.parametrize("semiring", [("Plus", "Times"), ("Min", "Plus")])
def test_mxm(engine, rng, dcfg, semiring):
    add, mult = semiring
    a = random_mat_dict(rng, N, N)
    b = random_mat_dict(rng, N, N)
    c = random_mat_dict(rng, N, N)
    mask = random_mat_dict(rng, N, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.mxm(
        _mat_store(c, N, N), _mat_store(a, N, N), _mat_store(b, N, N),
        add, mult, _make_desc(dcfg, _mat_store(mask, N, N, np.bool_)),
    )
    want = _ref_final_mat(c, R.ref_mxm(a, b, add, mult), dcfg, mask)
    _approx_eq(got.to_dict(), want)


@pytest.mark.parametrize("transpose", ["a", "b", "both"])
def test_mxm_transposes(engine, rng, transpose):
    a = random_mat_dict(rng, N, N)
    b = random_mat_dict(rng, N, N)
    eng = gb.current_backend_engine()
    got = eng.mxm(
        _mat_store({}, N, N), _mat_store(a, N, N), _mat_store(b, N, N),
        "Plus", "Times", OpDesc(),
        ta=transpose in ("a", "both"), tb=transpose in ("b", "both"),
    )
    ra = R.ref_transpose_dict(a) if transpose in ("a", "both") else a
    rb = R.ref_transpose_dict(b) if transpose in ("b", "both") else b
    want = R.ref_mxm(ra, rb, "Plus", "Times")
    _approx_eq(got.to_dict(), {k: v for k, v in want.items()})


@pytest.mark.parametrize("dcfg", DESCS)
@pytest.mark.parametrize("op", ["Plus", "Minus", "Min", "Times"])
def test_ewise_add_vec(engine, rng, dcfg, op):
    u = random_vec_dict(rng, N)
    v = random_vec_dict(rng, N)
    c = random_vec_dict(rng, N)
    mask = random_vec_dict(rng, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.ewise_add_vec(
        _vec_store(c, N), _vec_store(u, N), _vec_store(v, N),
        op, _make_desc(dcfg, _vec_store(mask, N, np.bool_)),
    )
    want = _ref_final_vec(c, R.ref_ewise_add(u, v, op), dcfg, mask)
    _approx_eq(got.to_dict(), want)


@pytest.mark.parametrize("dcfg", DESCS)
@pytest.mark.parametrize("op", ["Times", "Plus", "Max"])
def test_ewise_mult_vec(engine, rng, dcfg, op):
    u = random_vec_dict(rng, N)
    v = random_vec_dict(rng, N)
    c = random_vec_dict(rng, N)
    mask = random_vec_dict(rng, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.ewise_mult_vec(
        _vec_store(c, N), _vec_store(u, N), _vec_store(v, N),
        op, _make_desc(dcfg, _vec_store(mask, N, np.bool_)),
    )
    want = _ref_final_vec(c, R.ref_ewise_mult(u, v, op), dcfg, mask)
    _approx_eq(got.to_dict(), want)


@pytest.mark.parametrize("dcfg", DESCS[:6])
@pytest.mark.parametrize("kind", ["add", "mult"])
def test_ewise_mat(engine, rng, dcfg, kind):
    a = random_mat_dict(rng, N, N)
    b = random_mat_dict(rng, N, N)
    c = random_mat_dict(rng, N, N)
    mask = random_mat_dict(rng, N, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    method = eng.ewise_add_mat if kind == "add" else eng.ewise_mult_mat
    ref = R.ref_ewise_add if kind == "add" else R.ref_ewise_mult
    got = method(
        _mat_store(c, N, N), _mat_store(a, N, N), _mat_store(b, N, N),
        "Plus", _make_desc(dcfg, _mat_store(mask, N, N, np.bool_)),
    )
    want = _ref_final_mat(c, ref(a, b, "Plus"), dcfg, mask)
    _approx_eq(got.to_dict(), want)


@pytest.mark.parametrize("dcfg", DESCS[:6])
@pytest.mark.parametrize(
    "op_spec",
    [
        ("unary", "Identity"),
        ("unary", "AdditiveInverse"),
        ("bind", "Times", 2.5, "second"),
        ("bind", "Minus", 100.0, "first"),
    ],
)
def test_apply_vec(engine, rng, dcfg, op_spec):
    u = random_vec_dict(rng, N)
    c = random_vec_dict(rng, N)
    mask = random_vec_dict(rng, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.apply_vec(
        _vec_store(u, N), _vec_store(u, N), op_spec, OpDesc()
    )
    want = _ref_final_vec(
        u, R.ref_apply(u, op_spec),
        dict(mask=False, comp=False, repl=False, accum=None), None,
    )
    _approx_eq(got.to_dict(), want)
    # and the full finalize grid against c
    got2 = eng.apply_vec(
        _vec_store(c, N), _vec_store(u, N), op_spec,
        _make_desc(dcfg, _vec_store(mask, N, np.bool_)),
    )
    want2 = _ref_final_vec(c, R.ref_apply(u, op_spec), dcfg, mask)
    _approx_eq(got2.to_dict(), want2)


@pytest.mark.parametrize("op_spec", [("unary", "Identity"), ("bind", "Times", 3.0, "second")])
def test_apply_mat(engine, rng, op_spec):
    a = random_mat_dict(rng, N, N)
    eng = gb.current_backend_engine()
    got = eng.apply_mat(_mat_store(a, N, N), _mat_store(a, N, N), op_spec, OpDesc())
    _approx_eq(got.to_dict(), R.ref_apply(a, op_spec))


@pytest.mark.parametrize("op", ["Plus", "Min", "Max", "Times"])
def test_reduce_scalar(engine, rng, op):
    a = random_mat_dict(rng, N, N)
    u = random_vec_dict(rng, N)
    eng = gb.current_backend_engine()
    got_m = eng.reduce_mat_scalar(_mat_store(a, N, N), op, None)
    got_v = eng.reduce_vec_scalar(_vec_store(u, N), op, None)
    assert got_m == pytest.approx(R.ref_reduce_scalar(a, op))
    assert got_v == pytest.approx(R.ref_reduce_scalar(u, op))


def test_reduce_scalar_empty_returns_identity(engine):
    eng = gb.current_backend_engine()
    empty_m = SparseMatrix.empty(N, N, np.float64)
    assert eng.reduce_mat_scalar(empty_m, "Plus", None) == 0.0
    assert eng.reduce_mat_scalar(empty_m, "Min", None) == np.inf
    empty_v = SparseVector.empty(N, np.int64)
    assert eng.reduce_vec_scalar(empty_v, "Max", None) == np.iinfo(np.int64).min


@pytest.mark.parametrize("dcfg", DESCS[:6])
def test_reduce_rows(engine, rng, dcfg):
    a = random_mat_dict(rng, N, N)
    c = random_vec_dict(rng, N)
    mask = random_vec_dict(rng, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.reduce_rows(
        _vec_store(c, N), _mat_store(a, N, N), "Plus",
        _make_desc(dcfg, _vec_store(mask, N, np.bool_)),
    )
    want = _ref_final_vec(c, R.ref_reduce_rows(a, "Plus"), dcfg, mask)
    _approx_eq(got.to_dict(), want)


@pytest.mark.parametrize("dcfg", DESCS[:6])
def test_transpose_op(engine, rng, dcfg):
    a = random_mat_dict(rng, N, N)
    c = random_mat_dict(rng, N, N)
    mask = random_mat_dict(rng, N, N, dtype=np.bool_)
    eng = gb.current_backend_engine()
    got = eng.transpose(
        _mat_store(c, N, N), _mat_store(a, N, N),
        _make_desc(dcfg, _mat_store(mask, N, N, np.bool_)),
    )
    want = _ref_final_mat(c, R.ref_transpose_dict(a), dcfg, mask)
    _approx_eq(got.to_dict(), want)


class TestExtract:
    def test_extract_vec(self, engine, rng):
        u = random_vec_dict(rng, N)
        idx = np.array([3, 0, 7, 3])  # permuted + duplicated
        eng = gb.current_backend_engine()
        got = eng.extract_vec(
            SparseVector.empty(idx.size, np.float64), _vec_store(u, N), idx, OpDesc()
        )
        assert got.to_dict() == R.ref_extract_vec(u, idx.tolist())

    def test_extract_mat(self, engine, rng):
        a = random_mat_dict(rng, N, N)
        rows = np.array([1, 1, 4])
        cols = np.array([5, 0, 5])
        eng = gb.current_backend_engine()
        got = eng.extract_mat(
            SparseMatrix.empty(rows.size, cols.size, np.float64),
            _mat_store(a, N, N), rows, cols, OpDesc(),
        )
        assert got.to_dict() == R.ref_extract_mat(a, rows.tolist(), cols.tolist())

    def test_extract_mat_transposed(self, engine, rng):
        a = random_mat_dict(rng, N, N)
        rows = np.arange(N)
        cols = np.arange(N)
        eng = gb.current_backend_engine()
        got = eng.extract_mat(
            SparseMatrix.empty(N, N, np.float64), _mat_store(a, N, N),
            rows, cols, OpDesc(), ta=True,
        )
        assert got.to_dict() == R.ref_transpose_dict(a)


class TestAssign:
    @pytest.mark.parametrize("accum", [None, "Plus"])
    def test_assign_vec(self, engine, rng, accum):
        c = random_vec_dict(rng, N)
        u = random_vec_dict(rng, 4)
        idx = np.array([2, 5, 7, 9])
        eng = gb.current_backend_engine()
        got = eng.assign_vec(
            _vec_store(c, N), _vec_store(u, 4), idx, OpDesc(accum=accum)
        )
        want = R.ref_assign_vec(c, u, idx.tolist(), accum)
        _approx_eq(got.to_dict(), want)

    @pytest.mark.parametrize("accum", [None, "Plus"])
    def test_assign_mat(self, engine, rng, accum):
        c = random_mat_dict(rng, N, N)
        a = random_mat_dict(rng, 3, 3, density=0.6)
        rows = np.array([1, 4, 8])
        cols = np.array([0, 5, 11])
        eng = gb.current_backend_engine()
        got = eng.assign_mat(
            _mat_store(c, N, N), _mat_store(a, 3, 3), rows, cols, OpDesc(accum=accum)
        )
        want = R.ref_assign_mat(c, a, rows.tolist(), cols.tolist(), accum)
        _approx_eq(got.to_dict(), want)

    def test_assign_vec_scalar_fills_region(self, engine, rng):
        c = random_vec_dict(rng, N)
        idx = np.array([0, 3, 6])
        eng = gb.current_backend_engine()
        got = eng.assign_vec_scalar(_vec_store(c, N), 42.0, idx, OpDesc())
        want = dict(c)
        for i in idx:
            want[int(i)] = 42.0
        _approx_eq(got.to_dict(), want)

    def test_assign_vec_scalar_masked_merge(self, engine, rng):
        # the BFS pattern: levels[frontier][:] = depth
        c = {0: 1.0, 5: 5.0}
        mask = {2: True, 5: True, 7: False}
        eng = gb.current_backend_engine()
        got = eng.assign_vec_scalar(
            _vec_store(c, N), 9.0, np.arange(N),
            OpDesc(mask=_vec_store(mask, N, np.bool_)),
        )
        assert got.to_dict() == {0: 1.0, 2: 9.0, 5: 9.0}

    def test_assign_mat_scalar(self, engine, rng):
        c = random_mat_dict(rng, N, N)
        rows = np.array([0, 2])
        cols = np.array([1, 3])
        eng = gb.current_backend_engine()
        got = eng.assign_mat_scalar(_mat_store(c, N, N), 7.0, rows, cols, OpDesc())
        want = dict(c)
        for r in rows:
            for s in cols:
                want[(int(r), int(s))] = 7.0
        _approx_eq(got.to_dict(), want)
