"""Masked accumulate-assign round-trips (``C[M, True] += expr`` et al.).

Python desugars ``C[M, replace] += expr`` into ``__getitem__`` →
``__iadd__`` → ``__setitem__``; the explicit *replace* flag (and the
mask itself) must survive that round-trip.  It used to be dropped — and
a masked view bound to a name (``mv = C[M]; mv += u``) silently did
nothing.  These tests run the fixed protocol differentially against the
interpreted engine on every backend.
"""

import numpy as np
import pytest

import repro as gb
from repro.jit.cppengine import toolchain_works

ENGINES = ["interpreted", "pyjit"] + (["cpp"] if toolchain_works() else [])


@pytest.fixture(params=ENGINES)
def any_engine(request):
    with gb.use_engine(request.param):
        yield request.param


def _state():
    c = gb.Vector(([1.0, 2.0, 3.0, 4.0], [0, 1, 2, 3]), shape=(4,))
    u = gb.Vector(([10.0, 20.0, 30.0, 40.0], [0, 1, 2, 3]), shape=(4,))
    m = gb.Vector(([True, True], [0, 1]), shape=(4,), dtype=bool)
    return c, u, m


def _dense(v):
    return list(v.to_numpy())


class TestExplicitReplaceSurvivesIadd:
    def test_masked_replace_accum_expr(self, any_engine):
        # C<M,replace> += u*1.0: masked lanes accumulate, the rest clear
        c, u, m = _state()
        with gb.Accumulator("Plus"):
            c[m, True] += u * 1.0
        assert _dense(c) == [11.0, 22.0, 0.0, 0.0]

    def test_masked_replace_numpy_bool(self, any_engine):
        # np.True_ instead of the builtin True must parse identically
        c, u, m = _state()
        c[m, np.True_] = u * 1.0
        assert _dense(c) == [10.0, 20.0, 0.0, 0.0]

    def test_masked_no_replace_merges(self, any_engine):
        c, u, m = _state()
        with gb.Accumulator("Plus"):
            c[m, False] += u * 1.0
        assert _dense(c) == [11.0, 22.0, 3.0, 4.0]

    def test_default_accumulator_is_plus(self, any_engine):
        c, u, m = _state()
        c[m, True] += u * 1.0
        assert _dense(c) == [11.0, 22.0, 0.0, 0.0]


class TestNamedMaskedView:
    def test_named_view_iadd_applies(self, any_engine):
        # mv = C[M]; mv += u used to silently no-op
        c, u, m = _state()
        mv = c[m]
        with gb.Accumulator("Plus"):
            mv += u
        assert _dense(c) == [11.0, 22.0, 3.0, 4.0]

    def test_named_view_iadd_with_replace(self, any_engine):
        c, u, m = _state()
        mv = c[m, True]
        with gb.Accumulator("Plus"):
            mv += u
        assert _dense(c) == [11.0, 22.0, 0.0, 0.0]

    def test_masked_region_iadd(self, any_engine):
        # C[M][0:2] += s: accumulate a scalar into an indexed region
        c, _, m = _state()
        with gb.Accumulator("Plus"):
            c[m][0:2] += 5.0
        assert _dense(c) == [6.0, 7.0, 3.0, 4.0]

    def test_complemented_view_iadd(self, any_engine):
        c, u, m = _state()
        with gb.Accumulator("Plus"):
            c[~m] += u
        assert _dense(c) == [1.0, 2.0, 33.0, 44.0]


class TestUnmaskedProtocolUnchanged:
    def test_plain_container_iadd(self, any_engine):
        c, u, _ = _state()
        with gb.Accumulator("Plus"):
            c += u * 1.0
        assert _dense(c) == [11.0, 22.0, 33.0, 44.0]

    def test_none_key_iadd(self, any_engine):
        c, u, _ = _state()
        with gb.Accumulator("Plus"):
            c[None] += u * 1.0
        assert _dense(c) == [11.0, 22.0, 33.0, 44.0]


class TestDifferentialAgainstInterpreted:
    """The full masked/replace/accum matrix, engine vs interpreted."""

    CASES = [
        ("replace_accum", lambda c, u, m: _accum_stmt(c, (m, True), u)),
        ("merge_accum", lambda c, u, m: _accum_stmt(c, (m, False), u)),
        ("mask_only_accum", lambda c, u, m: _accum_stmt(c, m, u)),
        ("comp_replace_accum", lambda c, u, m: _accum_stmt(c, (~m, True), u)),
    ]

    @pytest.mark.parametrize("label,stmt", CASES, ids=[c[0] for c in CASES])
    @pytest.mark.parametrize("engine_name", [e for e in ENGINES if e != "interpreted"])
    def test_agrees(self, engine_name, label, stmt):
        def run():
            c, u, m = _state()
            stmt(c, u, m)
            return _dense(c)

        with gb.use_engine("interpreted"):
            expected = run()
        with gb.use_engine(engine_name):
            got = run()
        assert got == pytest.approx(expected)


def _accum_stmt(c, key, u):
    with gb.Accumulator("Plus"):
        c[key] += u * 1.0
