"""Nonblocking execution mode: differential fuzz + targeted hazard tests.

The core correctness statement: any program run under ``gb.nonblocking()``
produces bit-identical container state to the same program run in blocking
mode, on every engine.  A seeded fuzzer generates randomized statement
sequences (masked/accumulated writes, aliased ``A[None] = A @ A``,
copies, scalar fills, mid-program observations) and compares the exact
final store dicts and dtypes between modes.

Targeted tests cover each queue mechanism individually: flush triggers,
dead-store elimination, copy elision, cross-statement substitution, WAR
force-evaluation, the queue cap, ``PYGB_MODE``, and the observability
events the queue emits.
"""

from __future__ import annotations

import contextlib
import os
import random
import subprocess
import sys

import numpy as np
import pytest

import repro as gb
from repro.core.dispatch import CountingEngine, make_engine
from repro.core.nonblocking import (
    _st,
    pending,
    reset_stats,
    set_mode,
    stats,
)
from repro.jit.cppengine import toolchain_works

N = 8


@pytest.fixture(autouse=True)
def _force_blocking_default():
    """These tests compare the two modes explicitly, so the process-wide
    default must be blocking even when the suite itself runs under
    ``PYGB_MODE=nonblocking`` (the CI nonblocking leg)."""
    set_mode("blocking")
    yield
    set_mode("blocking")


_BINOPS = ["Plus", "Minus", "Times", "Min", "Max", "First", "Second"]
_SEMIRINGS = [("Plus", "Times"), ("Min", "Plus"), ("Max", "First")]


# ----------------------------------------------------------------------
# fuzz program generation / execution
# ----------------------------------------------------------------------

def _gen_program(seed: int) -> list[dict]:
    """A randomized statement sequence over matrices A, B and vectors
    x, y, w (all int64), exercising every enqueue path."""
    rnd = random.Random(seed)
    kinds = [
        "vec_ewise",        # w[None] = x + y / x * y (varying op)
        "vec_ewise_masked",  # w[key] = x + y (mask/comp/replace/accum grid)
        "mxv", "vxm",        # w[None] = A @ x / x @ A (semiring grid)
        "mat_aliased",       # A[None] = A @ A
        "mat_ewise",         # B[None] = A + B
        "self_ewise",        # w[None] = w + w
        "vec_copy",          # w[:] = x
        "mat_copy",          # B[None] = A
        "scalar_fill",       # w[key] = c (masked and unmasked)
        "apply",             # w[None] = gb.apply(UnaryOp, x)
        "select",            # w[None] = gb.select("ValueGT", x, c)
        "observe",           # read w.nvals mid-program
        "reduce",            # scalar = gb.reduce(monoid, w) — observation
    ]
    steps = []
    for _ in range(rnd.randint(4, 12)):
        steps.append(
            dict(
                kind=rnd.choice(kinds),
                op=rnd.choice(_BINOPS),
                semiring=rnd.choice(_SEMIRINGS),
                masked=rnd.random() < 0.5,
                comp=rnd.random() < 0.5,
                replace=rnd.random() < 0.5,
                accum=rnd.choice([None, None, "Plus", "Min"]),
                const=rnd.randint(-3, 3),
            )
        )
    return steps


def _fresh_state(seed: int):
    rnd = np.random.default_rng(seed)

    def vec():
        idx = np.flatnonzero(rnd.random(N) < 0.6)
        return gb.Vector(
            (rnd.integers(-8, 8, idx.size), idx), shape=(N,), dtype=np.int64
        )

    def mat():
        flat = np.flatnonzero(rnd.random(N * N) < 0.35)
        return gb.Matrix(
            (rnd.integers(-8, 8, flat.size), (flat // N, flat % N)),
            shape=(N, N),
            dtype=np.int64,
        )

    return mat(), mat(), vec(), vec(), vec()


def _run_program(steps, seed: int, nonblocking: bool) -> tuple:
    a, b, x, y, w = _fresh_state(seed)
    mask = gb.Vector(([True] * 3, [0, 3, 6]), shape=(N,), dtype=bool)
    observations = []

    def key_for(s):
        if not s["masked"]:
            return None
        return (~mask if s["comp"] else mask, s["replace"])

    def write(target, s, expr):
        key = key_for(s)
        if s["accum"]:
            with gb.Accumulator(s["accum"]):
                if key is None:
                    target[None] = _accum(expr)
                else:
                    target.__setitem__(key, _accum(expr))
        elif key is None:
            target[None] = expr
        else:
            target[key] = expr

    ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
    with ctx:
        for s in steps:
            sr = gb.Semiring(gb.Monoid(s["semiring"][0]), s["semiring"][1])
            if s["kind"] == "vec_ewise":
                with gb.BinaryOp(s["op"]):
                    w[None] = x + y if s["const"] % 2 else x * y
            elif s["kind"] == "vec_ewise_masked":
                with gb.BinaryOp(s["op"]):
                    write(w, s, x + y)
            elif s["kind"] == "mxv":
                with sr:
                    write(w, s, a @ x)
            elif s["kind"] == "vxm":
                with sr:
                    write(w, s, x @ a)
            elif s["kind"] == "mat_aliased":
                with sr:
                    a[None] = a @ a
            elif s["kind"] == "mat_ewise":
                with gb.BinaryOp(s["op"]):
                    b[None] = a + b
            elif s["kind"] == "self_ewise":
                with gb.BinaryOp(s["op"]):
                    w[None] = w + w
            elif s["kind"] == "vec_copy":
                w[:] = x
            elif s["kind"] == "mat_copy":
                b[None] = a
            elif s["kind"] == "scalar_fill":
                write(w, s, s["const"])
            elif s["kind"] == "apply":
                w[None] = gb.apply(gb.UnaryOp("Plus", s["const"]), x)
            elif s["kind"] == "select":
                w[None] = gb.select("ValueGT", x, s["const"])
            elif s["kind"] == "observe":
                observations.append(w.nvals)
            else:  # reduce
                observations.append(gb.reduce(gb.Monoid("Plus"), w))
            # rotate so later statements consume earlier results
            x, y = y, x
    assert pending() == 0  # leaving the context must have flushed
    return (
        {n: (c._store.to_dict(), str(c.dtype)) for n, c in
         [("a", a), ("b", b), ("x", x), ("y", y), ("w", w)]},
        observations,
    )


def _accum(expr):
    from repro.core.masks import AccumExpr

    return AccumExpr(expr)


@pytest.mark.parametrize("seed", range(30))
def test_fuzz_nonblocking_matches_blocking(engine, seed):
    steps = _gen_program(seed)
    blocking = _run_program(steps, seed, nonblocking=False)
    deferred = _run_program(steps, seed, nonblocking=True)
    assert blocking == deferred


@pytest.mark.cpp
@pytest.mark.skipif(not toolchain_works(), reason="no working C++ toolchain")
@pytest.mark.parametrize("seed", range(8))
def test_fuzz_nonblocking_matches_blocking_cpp(seed):
    steps = _gen_program(seed)
    with gb.use_engine("cpp"):
        blocking = _run_program(steps, seed, nonblocking=False)
        deferred = _run_program(steps, seed, nonblocking=True)
    assert blocking == deferred


# ----------------------------------------------------------------------
# flush triggers
# ----------------------------------------------------------------------

def _vecs():
    u = gb.Vector(([1.0, 2.0, 3.0], [0, 2, 5]), shape=(N,), dtype=float)
    v = gb.Vector(([4.0, 5.0], [2, 6]), shape=(N,), dtype=float)
    w = gb.Vector(shape=(N,), dtype=float)
    return u, v, w


def test_statements_defer_until_context_exit(engine):
    u, v, w = _vecs()
    with gb.nonblocking():
        w[None] = u + v
        assert pending() == 1
        assert w._backing.nvals == 0  # not executed yet
    assert pending() == 0
    assert w._store.to_dict() == {0: 1.0, 2: 6.0, 5: 3.0, 6: 5.0}


def test_observation_flushes(engine):
    u, v, w = _vecs()
    with gb.nonblocking():
        w[None] = u + v
        assert w.nvals == 4  # nvals is an observation → flush
        assert pending() == 0


def test_wait_flushes(engine):
    u, v, w = _vecs()
    with gb.nonblocking():
        w[None] = u + v
        gb.wait()
        assert pending() == 0
        assert w._backing.nvals == 4


def test_flush_on_exception_unwind(engine):
    u, v, w = _vecs()
    with pytest.raises(RuntimeError):
        with gb.nonblocking():
            w[None] = u + v
            raise RuntimeError("boom")
    # statements issued before the raise still ran, like blocking mode
    assert pending() == 0
    assert w._backing.nvals == 4


def test_queue_cap_triggers_flush(engine):
    u, v, w = _vecs()
    st = _st()
    old_cap = st.queue.max_len
    st.queue.max_len = 3
    try:
        with gb.nonblocking():
            with gb.BinaryOp("Plus"):
                w[None] = u + v
                w[None] = u + v
                assert pending() == 2
                w[None] = u + v  # hits the cap
                assert pending() == 0
    finally:
        st.queue.max_len = old_cap


def test_nested_contexts_flush_only_at_outer_exit(engine):
    u, v, w = _vecs()
    with gb.nonblocking():
        with gb.nonblocking():
            w[None] = u + v
        # inner exit flushes (context-exit is unconditional, like GrB_wait)
        assert pending() == 0
        w[None] = v + u
        assert pending() == 1
    assert pending() == 0


# ----------------------------------------------------------------------
# queue optimisations, verified via dispatch counts
# ----------------------------------------------------------------------

@contextlib.contextmanager
def _counting(engine_name="pyjit"):
    eng = CountingEngine(make_engine(engine_name))
    with gb.use_engine(eng):
        yield eng


def test_dead_store_elimination(engine):
    u, v, w = _vecs()
    reset_stats()
    with _counting() as eng:
        with gb.nonblocking():
            with gb.BinaryOp("Plus"):
                w[None] = u + v  # dead: overwritten before any read
                w[None] = u * v
    assert stats()["dead_stores"] == 1
    assert sum(eng.counts.values()) == 1  # only the surviving statement ran
    assert w._store.to_dict() == {2: 6.0}


def test_dead_store_kept_when_observed(engine):
    u, v, w = _vecs()
    reset_stats()
    with gb.nonblocking():
        with gb.BinaryOp("Plus"):
            w[None] = u + v
            first = w.nvals  # observation: the first write must execute
            w[None] = u * v
    assert first == 4
    assert stats()["dead_stores"] == 0
    assert w._store.to_dict() == {2: 6.0}


def test_copy_elision_zero_dispatch(engine):
    u, _, w = _vecs()
    reset_stats()
    with _counting() as eng:
        with gb.nonblocking():
            w[:] = u
    assert stats()["copy_elisions"] == 1
    assert sum(eng.counts.values()) == 0  # store aliasing, no kernel
    assert w._store.to_dict() == u._store.to_dict()
    # backend stores are immutable-by-convention, so aliasing is safe: a
    # subsequent write to w rebinds, never mutates u's store
    with gb.BinaryOp("Plus"):
        w[None] = w + w
    assert u._store.to_dict() == {0: 1.0, 2: 2.0, 5: 3.0}


def test_copy_elision_requires_equal_dtype(engine):
    u, _, _ = _vecs()
    w = gb.Vector(shape=(N,), dtype=np.int64)
    reset_stats()
    with gb.nonblocking():
        w[:] = u  # float → int: must replay the blocking cast kernel
    assert stats()["copy_elisions"] == 0
    assert str(w.dtype) == "int64"
    assert w._store.to_dict() == {0: 1, 2: 2, 5: 3}


def test_cross_statement_substitution_fuses(engine):
    """t = u + v; w = apply(t); t = overwritten — the consumer stitches the
    producer's tree, the producer dies, and one fused kernel runs."""
    u, v, w = _vecs()
    t = gb.Vector(shape=(N,), dtype=float)
    reset_stats()
    with _counting() as eng:
        with gb.nonblocking():
            with gb.BinaryOp("Plus"):
                t[None] = u + v
                w[None] = gb.apply(gb.UnaryOp("Times", 2.0), t)
                t[None] = u * v  # kills the first write of t
    st = stats()
    assert st["substitutions"] == 1
    assert st["dead_stores"] == 1
    assert sum(eng.counts.values()) == 2  # fused add+apply, then the mult
    assert eng.counts.get("ewise_add_vec_apply", 0) == 1
    assert w._store.to_dict() == {0: 2.0, 2: 12.0, 5: 6.0, 6: 10.0}
    assert t._store.to_dict() == {2: 6.0}


def test_war_hazard_forces_producer_eval(engine):
    """Producer → input overwrite → consumer stitch → producer kill: the
    dead producer must be force-evaluated at its own queue position, or the
    consumer's stitched tree would read the post-overwrite input."""

    def run(nonblocking):
        u, v, _ = _vecs()
        t = gb.Vector(shape=(N,), dtype=float)
        w = gb.Vector(shape=(N,), dtype=float)
        ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
        with ctx:
            with gb.BinaryOp("Plus"):
                t[None] = u + v            # producer reads u
                u[:] = 0.0                 # WAR: pending overwrite of u
                w[None] = gb.apply(gb.UnaryOp("Times", 2.0), t)  # consumer
                t[None] = v * v            # WAW: kills the producer
        return w._store.to_dict(), t._store.to_dict(), u._store.to_dict()

    reset_stats()
    blocking = run(False)
    deferred = run(True)
    assert blocking == deferred
    assert stats()["forced_evals"] == 1


def test_war_after_consumer_resolved_in_order(engine):
    """Producer → consumer → input overwrite → kill: in-order replay already
    evaluates the consumer before the overwrite lands, so no force-eval is
    needed — but results must still match blocking mode exactly."""

    def run(nonblocking):
        u, v, _ = _vecs()
        t = gb.Vector(shape=(N,), dtype=float)
        w = gb.Vector(shape=(N,), dtype=float)
        ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
        with ctx:
            with gb.BinaryOp("Plus"):
                t[None] = u + v
                w[None] = gb.apply(gb.UnaryOp("Times", 2.0), t)
                u[:] = 0.0
                t[None] = v * v
        return w._store.to_dict(), t._store.to_dict(), u._store.to_dict()

    assert run(False) == run(True)


def test_war_hazard_through_stitched_chain(engine):
    """Reads are inherited through chains of stitched producers, so a
    two-deep chain whose leaf input is overwritten mid-queue still replays
    like blocking mode."""

    def run(nonblocking):
        u, v, _ = _vecs()
        t1 = gb.Vector(shape=(N,), dtype=float)
        t2 = gb.Vector(shape=(N,), dtype=float)
        w = gb.Vector(shape=(N,), dtype=float)
        ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
        with ctx:
            with gb.BinaryOp("Plus"):
                t1[None] = u + v                                  # leaf reads u
                t2[None] = gb.apply(gb.UnaryOp("Plus", 1.0), t1)  # stitches t1
                u[:] = 0.0                                        # overwrite leaf input
                w[None] = gb.apply(gb.UnaryOp("Times", 2.0), t2)  # stitches t2
                t2[None] = v * v                                  # kill middle
                t1[None] = v * v                                  # kill leaf
        return (w._store.to_dict(), t1._store.to_dict(),
                t2._store.to_dict(), u._store.to_dict())

    assert run(False) == run(True)


def test_raw_through_copy_of_pending_expr(engine):
    """Copying a container whose pending write is an expression shares the
    expression, so the copy survives the source being overwritten."""
    u, v, w = _vecs()
    t = gb.Vector(shape=(N,), dtype=float)
    with gb.nonblocking():
        with gb.BinaryOp("Plus"):
            t[None] = u + v
            w[:] = t          # copy of a pending expr result
            t[None] = u * v   # overwrite the source before any flush
    assert w._store.to_dict() == {0: 1.0, 2: 6.0, 5: 3.0, 6: 5.0}
    assert t._store.to_dict() == {2: 6.0}


def test_masked_accum_replace_differential(engine):
    """The opaque-thunk path: masked + accumulated + replace writes are
    replayed verbatim with a frozen descriptor."""

    def run(nonblocking):
        u, v, w = _vecs()
        w[None] = gb.apply(gb.UnaryOp("Plus", 10.0), u)
        mask = gb.Vector(([True, True], [2, 5]), shape=(N,), dtype=bool)
        ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
        with ctx:
            with gb.BinaryOp("Plus"):
                with gb.Accumulator("Plus"):
                    w.__setitem__((mask, True), _accum(u + v))
        return w._store.to_dict()

    assert run(False) == run(True)


def test_replace_flag_frozen_at_statement(engine):
    """A descriptor context exited before the flush must still apply: the
    SetKey is frozen at enqueue time."""

    def run(nonblocking):
        u, v, w = _vecs()
        w[None] = gb.apply(gb.UnaryOp("Plus", 10.0), u)
        mask = gb.Vector(([True, True], [2, 5]), shape=(N,), dtype=bool)
        ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
        with ctx:
            with gb.BinaryOp("Plus"):
                with gb.Replace:
                    w[mask] = u + v
                # Replace context has exited; the deferred write must not
                # see the current (non-replace) context at flush time
        return w._store.to_dict()

    assert run(False) == run(True)


def test_aliased_matrix_squaring(engine):
    def run(nonblocking):
        m = gb.Matrix(([1.0, 2.0, 3.0], ([0, 1, 2], [1, 2, 0])),
                      shape=(3, 3), dtype=float)
        ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
        with ctx:
            m[None] = m @ m
            m[None] = m @ m
        return m._store.to_dict()

    assert run(False) == run(True)


def test_indexed_assign_defers_and_freezes_index(engine):
    u, _, w = _vecs()
    idx = [0, 3, 5]
    with gb.nonblocking():
        w[idx] = 9.0
        idx.append(7)  # caller mutates the index list after the statement
        assert pending() == 1
    assert w._store.to_dict() == {0: 9.0, 3: 9.0, 5: 9.0}


# ----------------------------------------------------------------------
# mode plumbing
# ----------------------------------------------------------------------

def test_set_mode_roundtrip(engine):
    u, v, w = _vecs()
    set_mode("nonblocking")
    try:
        with gb.BinaryOp("Plus"):
            w[None] = u + v
        assert pending() == 1
        set_mode("blocking")  # switching back flushes
        assert pending() == 0
        assert w._backing.nvals == 4
    finally:
        set_mode("blocking")
    with pytest.raises(ValueError):
        set_mode("turbo")


def test_pygb_mode_env(tmp_path):
    """PYGB_MODE=nonblocking turns deferral on process-wide."""
    code = (
        "import repro as gb\n"
        "from repro.core.nonblocking import pending\n"
        "u = gb.Vector(([1.0], [0]), shape=(4,), dtype=float)\n"
        "w = gb.Vector(shape=(4,), dtype=float)\n"
        "with gb.BinaryOp('Plus'):\n"
        "    w[None] = u + u\n"
        "assert pending() == 1, pending()\n"
        "assert w.nvals == 1\n"
        "assert pending() == 0\n"
        "print('ok')\n"
    )
    env = dict(os.environ, PYGB_MODE="nonblocking", PYGB_BACKEND="pyjit")
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert "ok" in out.stdout


# ----------------------------------------------------------------------
# observability integration
# ----------------------------------------------------------------------

def test_queue_events_traced(engine, tmp_path):
    trace_path = tmp_path / "trace.json"
    u, v, w = _vecs()
    with gb.tracing(chrome=str(trace_path)):
        with gb.nonblocking():
            with gb.BinaryOp("Plus"):
                w[None] = u + v
    import json

    events = json.loads(trace_path.read_text())["traceEvents"]
    names = [e["name"] for e in events]
    assert "nb.enqueue" in names
    assert "nb.flush" in names
    flush_ev = next(e for e in events if e["name"] == "nb.flush")
    assert flush_ev["args"]["reason"] == "context-exit"
    assert flush_ev["args"]["entries"] == 1


# ----------------------------------------------------------------------
# whole-algorithm acceptance: fewer dispatches, identical results
# ----------------------------------------------------------------------

def test_pagerank_fewer_dispatches(engine):
    from repro.algorithms import pagerank
    from repro.io.generators import erdos_renyi

    m = erdos_renyi(60, seed=7, weighted=False, dtype=float)

    def run(nonblocking):
        eng = CountingEngine(make_engine("pyjit"))
        pr = gb.Vector(shape=(60,), dtype=float)
        ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
        with gb.use_engine(eng):
            with ctx:
                pagerank(m, pr)
        return pr.to_numpy(), sum(eng.counts.values())

    ranks_b, calls_b = run(False)
    ranks_nb, calls_nb = run(True)
    assert np.array_equal(ranks_b, ranks_nb)  # bit-identical
    assert calls_nb < calls_b


def test_bfs_identical_under_nonblocking(engine, small_graph):
    from repro.algorithms import bfs

    def run(nonblocking):
        frontier = gb.Vector(([True], [0]), shape=(7,), dtype=bool)
        levels = gb.Vector(shape=(7,), dtype=np.int64)
        ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
        with ctx:
            bfs(small_graph, frontier, levels)
        return levels._store.to_dict()

    assert run(False) == run(True)
