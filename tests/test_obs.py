"""The observability layer (``repro.obs``): tracing, stats, sinks.

Covers the zero-cost contract (``obs.ACTIVE`` off by default and
restored on context exit), span capture through real dispatches, the
Chrome ``trace_event`` sink, cache instant events, histogram quantiles,
and the cross-process stats merge behind ``python -m repro stats``.
"""

import json

import pytest

import repro as gb
import repro.obs as obs
from repro.obs.stats import (
    StatsAggregator,
    load_stats,
    merge_stats,
    persist_stats,
    quantile_ns,
    render_stats,
)
from repro.obs.tracer import FUSED_OPS, Tracer, TracingEngine


def _workload():
    a = gb.Matrix(([1.0, 2.0, 3.0], ([0, 1, 2], [1, 2, 0])), shape=(3, 3))
    u = gb.Vector(([1.0, 1.0, 1.0], [0, 1, 2]), shape=(3,))
    w = gb.Vector(shape=(3,), dtype=float)
    w[None] = a @ u
    return w


class TestActivation:
    def test_off_by_default(self):
        assert obs.ACTIVE is False
        assert obs.active_tracer() is None

    def test_context_manager_toggles_and_restores(self):
        assert obs.ACTIVE is False
        with gb.tracing() as tr:
            assert obs.ACTIVE is True
            assert obs.active_tracer() is tr
        assert obs.ACTIVE is False
        assert obs.active_tracer() is None

    def test_nested_tracing_restores_outer(self):
        with gb.tracing() as outer:
            with gb.tracing() as inner:
                assert obs.active_tracer() is inner
            assert obs.active_tracer() is outer
        assert obs.active_tracer() is None

    def test_exception_still_restores(self):
        with pytest.raises(RuntimeError):
            with gb.tracing():
                raise RuntimeError("boom")
        assert obs.ACTIVE is False

    def test_spec_parsing(self):
        parsed = obs._parse_trace_spec("chrome:/tmp/x.json,log")
        assert parsed == {"chrome_path": "/tmp/x.json", "log": True}
        assert obs._parse_trace_spec("nonsense") == {}  # typo ≠ crash


class TestSpanCapture:
    def test_dispatch_records_op_spans(self, engine):
        with gb.tracing() as tr:
            _workload()
        snap = tr.stats.snapshot()
        assert "mxv" in snap["ops"]
        entry = snap["ops"]["mxv"]
        assert entry["count"] == 1
        assert entry["total_ns"] > 0
        assert entry["engines"] == {engine: 1}

    def test_payload_attrs_on_spans(self):
        chrome = None
        with gb.tracing() as tr:
            tr._events = []  # capture without a file sink
            _workload()
            chrome = [e for e in tr._events if e["cat"] == "op"]
        assert chrome
        args = chrome[-1]["args"]
        assert args["engine"] and args["nvals"] > 0 and args["bytes"] > 0

    def test_untraced_dispatch_records_nothing(self, engine):
        with gb.tracing() as tr:
            pass  # tracer alive but workload runs after exit
        _workload()
        assert tr.stats.snapshot()["ops"] == {}

    def test_fused_ops_is_subset_of_dispatch(self):
        from repro.core.dispatch import _DISPATCH_METHODS

        assert FUSED_OPS <= _DISPATCH_METHODS


class TestTracingEngine:
    def test_wrapper_is_memoised(self):
        from repro.core.dispatch import make_engine

        eng = make_engine("interpreted")
        tr = Tracer()
        w1, w2 = tr.wrap_engine(eng), tr.wrap_engine(eng)
        assert w1 is w2
        assert tr.wrap_engine(w1) is w1  # no double wrapping

    def test_non_dispatch_attrs_pass_through(self):
        from repro.core.dispatch import make_engine

        eng = make_engine("interpreted")
        wrapped = TracingEngine(eng, Tracer())
        assert wrapped.name == eng.name
        assert wrapped.supports_fusion == eng.supports_fusion


class TestChromeSink:
    def test_chrome_file_is_loadable(self, tmp_path, engine):
        path = tmp_path / "trace.json"
        with gb.tracing(chrome=path):
            _workload()
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert events
        spans = [e for e in events if e["ph"] == "X"]
        assert spans
        for ev in spans:
            assert set(("name", "cat", "ts", "dur", "pid", "tid")) <= set(ev)

    def test_flush_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.json"
        ctx = gb.tracing(chrome=path)
        with ctx as tr:
            pass
        before = path.read_text()
        tr.flush()
        assert path.read_text() == before


class TestCacheEvents:
    def test_compile_and_hits_recorded(self, tmp_path, monkeypatch):
        # a fresh cache dir forces a compile, the second call a memory hit
        from repro.jit.cache import JitCache
        from repro.jit.pyengine import PyJitEngine

        eng = PyJitEngine(cache=JitCache(cache_dir=tmp_path))
        a = gb.Matrix(([1.0], ([0], [1])), shape=(2, 2))
        u = gb.Vector(([1.0, 1.0], [0, 1]), shape=(2,))
        w = gb.Vector(shape=(2,), dtype=float)
        with gb.tracing() as tr:
            with gb.use_engine(eng):
                w[None] = a @ u
                w[None] = a @ u
        events = tr.stats.snapshot()["cache_events"]
        assert events.get("compile", 0) >= 1
        assert events.get("memory_hit", 0) >= 1


class TestStats:
    def test_quantiles_from_log2_hist(self):
        agg = StatsAggregator()
        for dur in [100, 100, 100, 100_000]:
            agg.note_span("op_x", "op", dur, {"engine": "pyjit"})
        hist = agg.snapshot()["ops"]["op_x"]["hist"]
        assert sum(hist) == 4
        assert quantile_ns(hist, 0.5) == pytest.approx(96, rel=0.5)
        assert quantile_ns(hist, 0.99) == pytest.approx(98304, rel=0.5)
        assert quantile_ns([0] * 8, 0.99) == 0.0

    def test_ffi_split_accumulates(self):
        agg = StatsAggregator()
        agg.note_span("ffi_call", "ffi", 1000, {"kernel_ns": 600})
        agg.note_span("ffi_call", "ffi", 500, {"kernel_ns": 300})
        ffi = agg.snapshot()["ffi"]
        assert ffi == {"calls": 2, "total_ns": 1500, "kernel_ns": 900}

    def test_merge_is_additive(self):
        agg = StatsAggregator()
        agg.note_span("mxv", "op", 1000, {"engine": "pyjit", "fused": False})
        one = agg.snapshot()
        merged = merge_stats(one, one)
        assert merged["ops"]["mxv"]["count"] == 2
        assert merged["ops"]["mxv"]["total_ns"] == 2000
        assert merged["ops"]["mxv"]["engines"] == {"pyjit": 2}
        assert sum(merged["ops"]["mxv"]["hist"]) == 2

    def test_persist_merges_across_processes(self, tmp_path):
        path = tmp_path / "stats.json"
        agg = StatsAggregator()
        agg.note_span("mxv", "op", 1000, {"engine": "cpp", "fused": True})
        assert persist_stats(agg.snapshot(), path) == path
        assert persist_stats(agg.snapshot(), path) == path  # second "run"
        data = load_stats(path)
        assert data["ops"]["mxv"]["count"] == 2
        assert data["ops"]["mxv"]["fused"] == 2

    def test_persist_unwritable_is_best_effort(self):
        agg = StatsAggregator()
        assert persist_stats(agg.snapshot(), "/proc/nope/stats.json") is None

    def test_render_mentions_every_section(self, tmp_path):
        agg = StatsAggregator()
        agg.note_span("mxv", "op", 2000, {"engine": "cpp", "fused": False})
        agg.note_span("ffi_call", "ffi", 1000, {"kernel_ns": 700})
        agg.note_event("compile", "cache", {})
        agg.note_event("memory_hit", "cache", {})
        text = render_stats(agg.snapshot())
        assert "mxv" in text
        assert "engine split" in text
        assert "C++ FFI" in text
        assert "JIT cache: 1/2 hits" in text


class TestStatsCli:
    def test_stats_command_renders(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "stats.json"
        agg = StatsAggregator()
        agg.note_span("mxv", "op", 1500, {"engine": "pyjit", "fused": False})
        persist_stats(agg.snapshot(), path)
        assert main(["stats", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mxv" in out and "p99_us" in out

    def test_stats_command_empty(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["stats", "--file", str(tmp_path / "none.json")]) == 1
        assert "no operation stats" in capsys.readouterr().out

    def test_stats_reset(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "stats.json"
        path.write_text("{}")
        assert main(["stats", "--file", str(path), "--reset"]) == 0
        assert not path.exists()
