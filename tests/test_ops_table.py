"""Unit tests for the GBTL operator table (paper Fig. 6)."""

import numpy as np
import pytest

from repro.backend import ops_table as ot
from repro.exceptions import UnknownOperator


class TestTableContents:
    def test_all_four_unary_operators_present(self):
        assert set(ot.UNARY_OPS) == {
            "Identity",
            "AdditiveInverse",
            "LogicalNot",
            "MultiplicativeInverse",
        }

    def test_all_seventeen_binary_operators_present(self):
        # Fig. 6 lists exactly 17 binary operators
        expected = {
            "LogicalOr", "LogicalAnd", "LogicalXor", "Equal", "NotEqual",
            "GreaterThan", "LessThan", "GreaterEqual", "LessEqual",
            "Times", "Div", "First", "Second", "Min", "Max", "Plus", "Minus",
        }
        assert set(ot.BINARY_OPS) == expected
        assert len(ot.BINARY_OPS) == 17

    def test_unknown_names_raise(self):
        with pytest.raises(UnknownOperator):
            ot.binary_def("Frobnicate")
        with pytest.raises(UnknownOperator):
            ot.unary_def("Frobnicate")
        with pytest.raises(UnknownOperator):
            ot.identity_value("FrobnicateIdentity", np.float64)


class TestBinarySemantics:
    @pytest.mark.parametrize(
        "name,a,b,expected",
        [
            ("Plus", 3, 4, 7),
            ("Minus", 3, 4, -1),
            ("Times", 3, 4, 12),
            ("Min", 3, 4, 3),
            ("Max", 3, 4, 4),
            ("First", 3, 4, 3),
            ("Second", 3, 4, 4),
            ("Equal", 3, 3, True),
            ("NotEqual", 3, 4, True),
            ("GreaterThan", 3, 4, False),
            ("LessThan", 3, 4, True),
            ("GreaterEqual", 4, 4, True),
            ("LessEqual", 5, 4, False),
            ("LogicalOr", 0, 7, True),
            ("LogicalAnd", 0, 7, False),
            ("LogicalXor", 3, 7, False),
        ],
    )
    def test_scalar_application(self, name, a, b, expected):
        out = ot.apply_binary(name, np.asarray([a]), np.asarray([b]))
        assert out[0] == expected

    def test_div_floats_is_true_division(self):
        out = ot.apply_binary("Div", np.asarray([7.0]), np.asarray([2.0]))
        assert out[0] == pytest.approx(3.5)

    def test_div_ints_truncates_toward_zero(self):
        # C++ semantics: -7/2 == -3 (NumPy's // would give -4)
        out = ot.apply_binary("Div", np.asarray([-7]), np.asarray([2]))
        assert out[0] == -3

    def test_div_by_zero_ints_yields_zero(self):
        out = ot.apply_binary("Div", np.asarray([5]), np.asarray([0]))
        assert out[0] == 0

    def test_first_second_preserve_left_right(self):
        a = np.array([1, 2, 3])
        b = np.array([9, 8, 7])
        assert list(ot.apply_binary("First", a, b)) == [1, 2, 3]
        assert list(ot.apply_binary("Second", a, b)) == [9, 8, 7]


class TestUnarySemantics:
    def test_identity(self):
        a = np.array([1.5, -2.0])
        assert list(ot.apply_unary("Identity", a)) == [1.5, -2.0]

    def test_additive_inverse(self):
        assert list(ot.apply_unary("AdditiveInverse", np.array([3, -4]))) == [-3, 4]

    def test_logical_not_coerces(self):
        out = ot.apply_unary("LogicalNot", np.array([0.0, 2.5]))
        assert list(out) == [True, False]

    def test_multiplicative_inverse_floats(self):
        out = ot.apply_unary("MultiplicativeInverse", np.array([4.0]))
        assert out[0] == pytest.approx(0.25)

    def test_multiplicative_inverse_int_zero_guard(self):
        out = ot.apply_unary("MultiplicativeInverse", np.array([0, 2]))
        assert list(out) == [0, 0]


class TestIdentities:
    @pytest.mark.parametrize(
        "name,dtype,expected",
        [
            ("PlusIdentity", np.float64, 0.0),
            ("TimesIdentity", np.int32, 1),
            ("MinIdentity", np.float64, np.inf),
            ("MaxIdentity", np.float64, -np.inf),
            ("MinIdentity", np.int16, np.iinfo(np.int16).max),
            ("MaxIdentity", np.int16, np.iinfo(np.int16).min),
            ("MinIdentity", np.bool_, True),
            ("MaxIdentity", np.bool_, False),
            ("LogicalOrIdentity", np.bool_, False),
            ("LogicalAndIdentity", np.bool_, True),
            ("LogicalXorIdentity", np.bool_, False),
            ("EqualIdentity", np.bool_, True),
        ],
    )
    def test_named_identity_values(self, name, dtype, expected):
        assert ot.identity_value(name, dtype) == expected

    def test_literal_identity_passthrough(self):
        assert ot.identity_value(5, np.int64) == 5

    def test_identity_is_neutral_for_its_monoid(self):
        for op, ident_name in ot.DEFAULT_IDENTITY_NAME.items():
            for dtype in (np.int64, np.float64):
                ident = ot.identity_value(ident_name, dtype)
                for x in (np.dtype(dtype).type(3), np.dtype(dtype).type(0)):
                    got = ot.apply_binary(op, np.asarray([ident]), np.asarray([x]))
                    coerced = bool(x) if ot.binary_def(op).kind in ("logical",) else x
                    expected = (
                        bool(x)
                        if ot.binary_def(op).kind == "logical"
                        else (x == ident if op == "Equal" else coerced)
                    )
                    if op == "Equal":
                        continue  # Equal's monoid is over bools only
                    assert got[0] == expected, (op, dtype, x)


class TestResultDtypes:
    def test_comparisons_yield_bool(self):
        assert ot.binary_result_dtype("Equal", np.int64, np.int64) == np.bool_
        assert ot.binary_result_dtype("LessThan", np.float32, np.float64) == np.bool_

    def test_logical_ops_yield_bool(self):
        assert ot.binary_result_dtype("LogicalOr", np.int64, np.int64) == np.bool_

    def test_arith_promotes(self):
        assert ot.binary_result_dtype("Plus", np.int32, np.float32) == np.float64
        assert ot.binary_result_dtype("Times", np.int8, np.int64) == np.int64

    def test_bool_arith_promotes_to_int64(self):
        assert ot.binary_result_dtype("Plus", np.bool_, np.bool_) == np.int64

    def test_first_second_take_operand_dtype(self):
        assert ot.binary_result_dtype("First", np.int8, np.float64) == np.int8
        assert ot.binary_result_dtype("Second", np.int8, np.float64) == np.float64


class TestReduce:
    def test_nonassociative_ops_cannot_reduce(self):
        with pytest.raises(UnknownOperator):
            ot.reduce_ufunc("Minus")
        with pytest.raises(UnknownOperator):
            ot.reduce_ufunc("First")

    def test_monoid_ops_reduce(self):
        for op in ("Plus", "Times", "Min", "Max", "LogicalOr", "LogicalAnd", "LogicalXor"):
            assert ot.reduce_ufunc(op) is not None

    def test_segment_reduce_values(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        starts = np.array([0, 2, 3])
        out = ot.segment_reduce_values("Plus", vals, starts)
        assert list(out) == [3.0, 3.0, 9.0]

    def test_segment_reduce_min(self):
        vals = np.array([5, 1, 7, 2])
        out = ot.segment_reduce_values("Min", vals, np.array([0, 2]))
        assert list(out) == [1, 2]

    def test_segment_reduce_logical_coerces(self):
        vals = np.array([0.0, 2.0, 0.0])
        out = ot.segment_reduce_values("LogicalOr", vals, np.array([0, 2]))
        assert list(out) == [True, False]
