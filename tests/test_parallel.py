"""OpenMP-parallel kernels and the concurrent compilation path.

Three properties under test:

* parallel kernels produce the same sparsity pattern as the interpreted
  engine bit-for-bit, with values allclose (row-parallel kernels are
  bit-identical; vxm/reduce re-associate float addition);
* the cache is safe and deduplicating under concurrent ``get_module``
  callers — same-spec racers compile once, distinct specs in parallel;
* a compiler that rejects ``-fopenmp`` silently degrades to serial
  kernels that still agree with the reference.
"""

from __future__ import annotations

import stat
import threading

import numpy as np
import pytest

import repro as gb
from repro.backend.kernels import OpDesc
from repro.backend.svector import SparseVector
from repro.core.dispatch import InterpretedEngine
from repro.jit.cache import JitCache
from repro.jit.cppengine import toolchain_works
from repro.jit.spec import KernelSpec

from helpers import mat_from_dict, random_mat_dict, random_vec_dict, vec_from_dict

pytestmark = [
    pytest.mark.cpp,
    pytest.mark.skipif(not toolchain_works(), reason="no working C++ toolchain"),
]

# large enough to trip every kernel's "worth parallelising" row/nnz guard
N = 512


@pytest.fixture(scope="module")
def interp():
    return InterpretedEngine()


@pytest.fixture
def par_engine(monkeypatch):
    """A cpp engine with parallel dispatch forced on and 4 OpenMP threads
    (thread count is a runtime knob, so this works on any machine)."""
    from repro.jit.cppengine import CppJitEngine

    monkeypatch.setenv("PYGB_PARALLEL", "1")
    monkeypatch.setenv("PYGB_THREADS", "4")
    engine = CppJitEngine()
    if not engine.parallel_enabled():
        pytest.skip("compiler has no OpenMP support")
    return engine


def _vs(d, size=N, dtype=np.float64):
    return vec_from_dict(d, size, dtype)._store


def _ms(d, nrows=N, ncols=N, dtype=np.float64):
    return mat_from_dict(d, nrows, ncols, dtype)._store


def _same_pattern_close(got, want):
    g, w = got.to_dict(), want.to_dict()
    assert g.keys() == w.keys()
    for k, v in g.items():
        assert v == pytest.approx(w[k], rel=1e-9, abs=1e-12)


# ----------------------------------------------------------------------
# parallel kernels vs the interpreted reference
# ----------------------------------------------------------------------
class TestParallelKernelsMatchReference:
    def test_mxv(self, par_engine, interp, rng):
        a = random_mat_dict(rng, N, N, density=0.02)
        u = random_vec_dict(rng, N, density=0.5)
        desc = OpDesc()
        got = par_engine.mxv(_vs({}), _ms(a), _vs(u), "Plus", "Times", desc)
        want = interp.mxv(_vs({}), _ms(a), _vs(u), "Plus", "Times", OpDesc())
        _same_pattern_close(got, want)

    def test_mxv_masked(self, par_engine, interp, rng):
        a = random_mat_dict(rng, N, N, density=0.02)
        u = random_vec_dict(rng, N, density=0.5)
        mask = random_vec_dict(rng, N, density=0.5, dtype=np.bool_)
        for comp in (False, True):
            def desc():
                return OpDesc(
                    mask=_vs(mask, dtype=np.bool_), complement=comp, replace=True
                )
            got = par_engine.mxv(_vs({}), _ms(a), _vs(u), "Min", "Plus", desc())
            want = interp.mxv(_vs({}), _ms(a), _vs(u), "Min", "Plus", desc())
            _same_pattern_close(got, want)

    def test_vxm(self, par_engine, interp, rng):
        a = random_mat_dict(rng, N, N, density=0.02)
        u = random_vec_dict(rng, N, density=0.5)
        got = par_engine.vxm(_vs({}), _vs(u), _ms(a), "Plus", "Times", OpDesc())
        want = interp.vxm(_vs({}), _vs(u), _ms(a), "Plus", "Times", OpDesc())
        _same_pattern_close(got, want)

    def test_mxm(self, par_engine, interp, rng):
        a = random_mat_dict(rng, N, N, density=0.01)
        b = random_mat_dict(rng, N, N, density=0.01)
        got = par_engine.mxm(_ms({}), _ms(a), _ms(b), "Plus", "Times", OpDesc())
        want = interp.mxm(_ms({}), _ms(a), _ms(b), "Plus", "Times", OpDesc())
        _same_pattern_close(got, want)

    @pytest.mark.parametrize("func", ["ewise_add_mat", "ewise_mult_mat"])
    def test_ewise_mat(self, par_engine, interp, rng, func):
        a = random_mat_dict(rng, N, N, density=0.02)
        b = random_mat_dict(rng, N, N, density=0.02)
        got = getattr(par_engine, func)(_ms({}), _ms(a), _ms(b), "Plus", OpDesc())
        want = getattr(interp, func)(_ms({}), _ms(a), _ms(b), "Plus", OpDesc())
        _same_pattern_close(got, want)

    def test_apply_mat(self, par_engine, interp, rng):
        a = random_mat_dict(rng, N, N, density=0.02)
        op = ("bind", "Times", 2.5, "second")
        got = par_engine.apply_mat(_ms({}), _ms(a), op, OpDesc())
        want = interp.apply_mat(_ms({}), _ms(a), op, OpDesc())
        _same_pattern_close(got, want)

    def test_reduce_rows(self, par_engine, interp, rng):
        a = random_mat_dict(rng, N, N, density=0.02)
        got = par_engine.reduce_rows(_vs({}), _ms(a), "Plus", OpDesc())
        want = interp.reduce_rows(_vs({}), _ms(a), "Plus", OpDesc())
        _same_pattern_close(got, want)

    def test_reduce_scalar_large(self, par_engine, interp, rng):
        # > 2*32768 entries so the blocked parallel reduction engages
        size = 1 << 18
        idx = np.arange(0, size, 2, dtype=np.int64)
        vals = rng.uniform(-10, 10, size=idx.size)
        u = SparseVector.from_sorted(size, idx, vals)
        got = par_engine.reduce_vec_scalar(u, "Plus", None)
        want = interp.reduce_vec_scalar(u, "Plus", None)
        assert got == pytest.approx(want, rel=1e-9)

    def test_row_parallel_kernels_bit_identical_to_serial(self, par_engine, rng, monkeypatch):
        """Row-parallel kernels keep the serial per-row fold order, so the
        parallel artifact must agree with the serial one to the last bit."""
        a = random_mat_dict(rng, N, N, density=0.02)
        b = random_mat_dict(rng, N, N, density=0.01)
        u = random_vec_dict(rng, N, density=0.5)
        par_v = par_engine.mxv(_vs({}), _ms(a), _vs(u), "Plus", "Times", OpDesc())
        par_m = par_engine.mxm(_ms({}), _ms(a), _ms(b), "Plus", "Times", OpDesc())
        monkeypatch.setenv("PYGB_PARALLEL", "0")
        assert not par_engine.parallel_enabled()
        ser_v = par_engine.mxv(_vs({}), _ms(a), _vs(u), "Plus", "Times", OpDesc())
        ser_m = par_engine.mxm(_ms({}), _ms(a), _ms(b), "Plus", "Times", OpDesc())
        assert np.array_equal(par_v.indices, ser_v.indices)
        assert np.array_equal(par_v.values, ser_v.values)
        assert np.array_equal(par_m.indptr, ser_m.indptr)
        assert np.array_equal(par_m.indices, ser_m.indices)
        assert np.array_equal(par_m.values, ser_m.values)


# ----------------------------------------------------------------------
# serial/parallel artifacts coexist in one cache
# ----------------------------------------------------------------------
def test_parallel_flag_changes_spec_hash():
    base = dict(a="float64", u="float64", c="float64", t_dtype="float64",
                add="Plus", mult="Times")
    serial = KernelSpec.make("mxv", **base)
    par = KernelSpec.make("mxv", **base, par=True)
    assert serial.key_hash != par.key_hash
    assert "par" not in serial.key  # old serial key shape is unchanged


def test_serial_and_parallel_artifacts_coexist(par_engine, rng, monkeypatch):
    cache_dir = par_engine.cache.cache_dir
    a = random_mat_dict(rng, N, N, density=0.02)
    u = random_vec_dict(rng, N, density=0.5)
    par_engine.mxv(_vs({}), _ms(a), _vs(u), "Plus", "Times", OpDesc())
    monkeypatch.setenv("PYGB_PARALLEL", "0")
    par_engine.mxv(_vs({}), _ms(a), _vs(u), "Plus", "Times", OpDesc())
    base = dict(a="float64", u="float64", c="float64", t_dtype="float64",
                add="Plus", mult="Times", accum="none", comp=0, mask="none",
                repl=0)
    serial = KernelSpec.make("mxv", **base)
    par = KernelSpec.make("mxv", **base, par=True)
    assert (cache_dir / f"{serial.module_stem}.so").exists()
    assert (cache_dir / f"{par.module_stem}.so").exists()


# ----------------------------------------------------------------------
# concurrent get_module: dedupe per spec, parallel across specs
# ----------------------------------------------------------------------
def test_concurrent_get_module_compiles_each_spec_once(tmp_path):
    cache = JitCache(tmp_path)
    specs = [KernelSpec.make("fake", variant=i) for i in range(4)]
    compile_counts: dict[str, int] = {}
    counts_lock = threading.Lock()

    def generate(spec):
        return f"# generated for {spec.key}\n"

    def compiler(src_path, out_path):
        with counts_lock:
            name = out_path.name
            compile_counts[name] = compile_counts.get(name, 0) + 1
        out_path.write_text("binary")

    n_threads = 16
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def worker(i):
        try:
            barrier.wait()
            spec = specs[i % len(specs)]
            results[i] = cache.get_module(
                spec, generate, suffix=".cpp", compiler=compiler
            )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert all(r is not None for r in results)
    # every spec compiled exactly once despite 4 racers each
    assert sorted(compile_counts.values()) == [1, 1, 1, 1]
    assert cache.stats.compiles == 4
    assert cache.stats.memory_hits == n_threads - 4


def test_precompile_report_and_idempotence(tmp_path):
    cache = JitCache(tmp_path)
    specs = [KernelSpec.make("fake", variant=i) for i in range(6)]

    def generate(spec):
        return "source\n"

    def compiler(src_path, out_path):
        out_path.write_text("binary")

    jobs = [(s, generate, ".cpp", compiler) for s in specs]
    report = cache.precompile(jobs, max_workers=3)
    assert report["requested"] == 6
    assert report["compiled"] == 6
    assert report["failed"] == []
    assert report["jobs"] == 3

    again = cache.precompile(jobs, max_workers=3)
    assert again["compiled"] == 0
    assert again["memory_hits"] == 6


def test_precompile_collects_failures(tmp_path):
    cache = JitCache(tmp_path)

    def generate(spec):
        return "source\n"

    def bad_compiler(src_path, out_path):
        raise RuntimeError("boom")

    report = cache.precompile(
        [(KernelSpec.make("fake", variant="bad"), generate, ".cpp", bad_compiler)]
    )
    assert report["compiled"] == 0
    assert len(report["failed"]) == 1
    assert "boom" in report["failed"][0][1]


# ----------------------------------------------------------------------
# cache warming covers the algorithms (drift guard)
# ----------------------------------------------------------------------
def test_warm_cache_covers_algorithms(rng, no_faults):
    """After warm_cache, running every bundled algorithm (operation-wise
    and whole-module) must be all cache hits — zero inline compiles.
    (Compile-count exact, so ambient chaos injection is opted out: an
    injected ``kernel_fail`` on a cpp dispatch falls back to pyjit,
    whose module is an inline compile warm_cache never promised.)"""
    from repro.algorithms import (
        bfs_levels,
        connected_components,
        lower_triangle,
        pagerank,
        sssp_distances,
        triangle_count,
    )
    from repro.algorithms.compiled import (
        bfs_compiled,
        pagerank_compiled,
        sssp_compiled,
        triangle_count_compiled,
    )
    from repro.io.generators import erdos_renyi, grid_graph, scale_free
    from repro.jit.cache import default_cache
    from repro.jit.precompile import warm_cache

    report = warm_cache()
    assert report["failed"] == []

    cache = default_cache()
    before = cache.stats.compiles
    with gb.use_engine("cpp"):
        g = erdos_renyi(12, seed=3)
        bfs_levels(g, 0)
        wg = grid_graph(4, weighted=True, seed=5, dtype=float)
        sssp_distances(wg, 0)
        pg = scale_free(12, seed=7)
        pr = gb.Vector(shape=(12,), dtype=float)
        pagerank(pg, pr, threshold=1e-6)
        r, c, _ = g.to_coo()
        A = gb.Matrix(
            (np.ones(2 * len(r)), (np.concatenate([r, c]), np.concatenate([c, r]))),
            shape=g.shape, dtype=int,
        )
        L = lower_triangle(A)
        triangle_count(L)
        connected_components(g)
    bfs_compiled(g._store, 0)
    sssp_compiled(wg._store, 0)
    pagerank_compiled(pg._store)
    triangle_count_compiled(L._store)
    assert cache.stats.compiles == before, (
        "algorithms compiled kernels warm_cache missed — update "
        "repro.jit.precompile._ALGORITHM_KERNELS"
    )


# ----------------------------------------------------------------------
# silent serial fallback when the compiler rejects -fopenmp
# ----------------------------------------------------------------------
def test_serial_fallback_without_openmp(tmp_path, rng, monkeypatch):
    from repro.jit.cppengine import CppJitEngine, find_cxx_compiler, openmp_available

    real = find_cxx_compiler()
    wrapper = tmp_path / "noomp-g++"
    wrapper.write_text(
        "#!/bin/sh\n"
        'for a in "$@"; do\n'
        '  [ "$a" = "-fopenmp" ] && { echo "error: unrecognized option" >&2; exit 1; }\n'
        "done\n"
        f'exec {real} "$@"\n'
    )
    wrapper.chmod(wrapper.stat().st_mode | stat.S_IXUSR)

    monkeypatch.setenv("PYGB_CXX", str(wrapper))
    monkeypatch.setenv("PYGB_PARALLEL", "1")
    engine = CppJitEngine(JitCache(tmp_path / "cache"))
    assert engine.cxx == str(wrapper)
    assert not openmp_available(engine.cxx)
    assert not engine.parallel_enabled()  # silent fallback, no error

    n = 32
    a = random_mat_dict(rng, n, n, density=0.2)
    u = random_vec_dict(rng, n, density=0.5)
    got = engine.mxv(
        _vs({}, n), _ms(a, n, n), _vs(u, n), "Plus", "Times", OpDesc()
    )
    want = InterpretedEngine().mxv(
        _vs({}, n), _ms(a, n, n), _vs(u, n), "Plus", "Times", OpDesc()
    )
    _same_pattern_close(got, want)


# ----------------------------------------------------------------------
# the CLI entry point
# ----------------------------------------------------------------------
def test_precompile_cli(capsys):
    from repro.__main__ import main

    assert main(["precompile", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "compiler:" in out
    assert "warmed" in out
