"""Unit tests for the vectorised backend primitives."""

import numpy as np

from repro.backend import primitives as P


class TestExpandRanges:
    def test_basic(self):
        out = P.expand_ranges(np.array([0, 10]), np.array([3, 2]))
        assert list(out) == [0, 1, 2, 10, 11]

    def test_empty_counts(self):
        out = P.expand_ranges(np.array([5, 7, 9]), np.array([0, 2, 0]))
        assert list(out) == [7, 8]

    def test_all_empty(self):
        assert P.expand_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0


class TestSegments:
    def test_segment_starts(self):
        keys = np.array([1, 1, 3, 3, 3, 9])
        assert list(P.segment_starts(keys)) == [0, 2, 5]

    def test_segment_starts_empty(self):
        assert P.segment_starts(np.array([], dtype=np.int64)).size == 0

    def test_segment_reduce(self):
        vals = np.array([1.0, 2.0, 4.0, 8.0])
        out = P.segment_reduce(np.add, vals, np.array([0, 2]))
        assert list(out) == [3.0, 12.0]

    def test_segment_reduce_logical(self):
        vals = np.array([0.0, 0.0, 3.0])
        out = P.segment_reduce(np.logical_or, vals, np.array([0, 2]), logical=True)
        assert list(out) == [False, True]


class TestCoalesce:
    def test_merges_duplicates(self):
        keys = np.array([5, 1, 5, 1, 9])
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        k, v = P.coalesce(keys, vals, np.add)
        assert list(k) == [1, 5, 9]
        assert list(v) == [6.0, 4.0, 5.0]

    def test_no_duplicates_fast_path(self):
        keys = np.array([3, 1, 2])
        vals = np.array([30.0, 10.0, 20.0])
        k, v = P.coalesce(keys, vals, np.add)
        assert list(k) == [1, 2, 3]
        assert list(v) == [10.0, 20.0, 30.0]

    def test_min_monoid(self):
        keys = np.array([1, 1])
        vals = np.array([5.0, 2.0])
        k, v = P.coalesce(keys, vals, np.minimum)
        assert list(v) == [2.0]


class TestMembership:
    def test_in_sorted(self):
        hay = np.array([2, 5, 9])
        needles = np.array([1, 2, 5, 6, 9, 10])
        assert list(P.in_sorted(needles, hay)) == [False, True, True, False, True, False]

    def test_in_sorted_empty_haystack(self):
        assert not P.in_sorted(np.array([1, 2]), np.array([], dtype=np.int64)).any()


class TestUnionMerge:
    def test_applies_op_only_where_both(self):
        # eWiseAdd semantics: pass-through where only one side stored
        ka, va = np.array([1, 3]), np.array([10.0, 30.0])
        kb, vb = np.array([3, 5]), np.array([300.0, 500.0])
        k, v = P.union_merge(ka, va, kb, vb, np.add, np.dtype(np.float64))
        assert list(k) == [1, 3, 5]
        assert list(v) == [10.0, 330.0, 500.0]

    def test_argument_order_preserved(self):
        # Minus is not commutative: A value must be the left operand
        ka, va = np.array([0]), np.array([10.0])
        kb, vb = np.array([0]), np.array([3.0])
        _, v = P.union_merge(ka, va, kb, vb, np.subtract, np.dtype(np.float64))
        assert v[0] == 7.0

    def test_one_side_empty(self):
        ka, va = np.array([], dtype=np.int64), np.array([], dtype=np.float64)
        kb, vb = np.array([2]), np.array([5.0])
        k, v = P.union_merge(ka, va, kb, vb, np.add, np.dtype(np.float64))
        assert list(k) == [2] and list(v) == [5.0]
        k, v = P.union_merge(kb, vb, ka, va, np.add, np.dtype(np.float64))
        assert list(k) == [2] and list(v) == [5.0]

    def test_mixed_dtypes_promote(self):
        ka, va = np.array([0]), np.array([1], dtype=np.int32)
        kb, vb = np.array([0]), np.array([0.5], dtype=np.float64)
        _, v = P.union_merge(ka, va, kb, vb, np.add, np.dtype(np.float64))
        assert v[0] == 1.5


class TestIntersectMerge:
    def test_keeps_only_common(self):
        ka, va = np.array([1, 3, 5]), np.array([1.0, 3.0, 5.0])
        kb, vb = np.array([3, 5, 7]), np.array([30.0, 50.0, 70.0])
        k, v = P.intersect_merge(ka, va, kb, vb, np.multiply, np.dtype(np.float64))
        assert list(k) == [3, 5]
        assert list(v) == [90.0, 250.0]

    def test_disjoint(self):
        ka, va = np.array([1]), np.array([1.0])
        kb, vb = np.array([2]), np.array([2.0])
        k, v = P.intersect_merge(ka, va, kb, vb, np.multiply, np.dtype(np.float64))
        assert k.size == 0 and v.size == 0

    def test_empty_operand(self):
        ka = np.array([], dtype=np.int64)
        va = np.array([], dtype=np.float64)
        kb, vb = np.array([2]), np.array([2.0])
        k, v = P.intersect_merge(ka, va, kb, vb, np.multiply, np.dtype(np.float64))
        assert k.size == 0


class TestRestrict:
    def test_keep_in_mask(self):
        keys = np.array([1, 2, 3, 4])
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        k, v = P.restrict(keys, vals, np.array([2, 4]), complement=False)
        assert list(k) == [2, 4]

    def test_complement_never_densifies(self):
        keys = np.array([1, 2, 3, 4])
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        k, v = P.restrict(keys, vals, np.array([2, 4]), complement=True)
        assert list(k) == [1, 3]


class TestKeys:
    def test_encode_decode_roundtrip(self):
        rows = np.array([0, 1, 7])
        cols = np.array([3, 0, 9])
        keys = P.encode_keys(rows, cols, 10)
        r, c = P.decode_keys(keys, 10)
        assert list(r) == list(rows) and list(c) == list(cols)

    def test_keys_are_row_major_ordered(self):
        keys = P.encode_keys(np.array([0, 1]), np.array([9, 0]), 10)
        assert keys[0] < keys[1]


class TestSpGEMM:
    def test_identity_times_matrix(self):
        # I @ B == B over (Plus, Times)
        b_indptr = np.array([0, 2, 3])
        b_indices = np.array([0, 1, 1])
        b_vals = np.array([5.0, 6.0, 7.0])
        a_rows = np.array([0, 1])
        a_cols = np.array([0, 1])
        a_vals = np.array([1.0, 1.0])
        keys, vals = P.spgemm_expand(
            a_rows, a_cols, a_vals, b_indptr, b_indices, b_vals, 2,
            np.multiply, np.add, np.dtype(np.float64),
        )
        rows, cols = P.decode_keys(keys, 2)
        got = {(int(r), int(c)): v for r, c, v in zip(rows, cols, vals)}
        assert got == {(0, 0): 5.0, (0, 1): 6.0, (1, 1): 7.0}

    def test_duplicate_products_reduced(self):
        # A = [1 1] as a row; B has two rows hitting the same column
        a_rows = np.array([0, 0])
        a_cols = np.array([0, 1])
        a_vals = np.array([1.0, 1.0])
        b_indptr = np.array([0, 1, 2])
        b_indices = np.array([0, 0])
        b_vals = np.array([3.0, 4.0])
        keys, vals = P.spgemm_expand(
            a_rows, a_cols, a_vals, b_indptr, b_indices, b_vals, 1,
            np.multiply, np.add, np.dtype(np.float64),
        )
        assert vals[0] == 7.0 and keys.size == 1

    def test_empty_result(self):
        keys, vals = P.spgemm_expand(
            np.array([0]), np.array([0]), np.array([1.0]),
            np.array([0, 0]), np.array([], dtype=np.int64), np.array([], dtype=np.float64),
            3, np.multiply, np.add, np.dtype(np.float64),
        )
        assert keys.size == 0


class TestSpMV:
    def test_row_products(self):
        indptr = np.array([0, 2, 2, 3])
        indices = np.array([0, 1, 2])
        values = np.array([1.0, 2.0, 3.0])
        x_dense = np.array([10.0, 20.0, 30.0])
        x_present = np.array([True, True, False])
        idx, vals = P.spmv_gather(
            indptr, indices, values, 3, x_dense, x_present,
            np.multiply, np.add, np.dtype(np.float64),
        )
        # row 0: 1*10 + 2*20 = 50; row 1 empty; row 2 hits absent x -> none
        assert list(idx) == [0]
        assert list(vals) == [50.0]

    def test_no_present_entries(self):
        idx, vals = P.spmv_gather(
            np.array([0, 1]), np.array([0]), np.array([1.0]), 1,
            np.array([0.0]), np.array([False]),
            np.multiply, np.add, np.dtype(np.float64),
        )
        assert idx.size == 0


class TestFinalize:
    def test_no_mask_no_accum_replaces(self):
        k, v = P.finalize(
            np.array([0]), np.array([9.0]),
            np.array([1]), np.array([5.0]),
            np.dtype(np.float64), None, False, False, None,
        )
        assert list(k) == [1] and list(v) == [5.0]

    def test_accum_unions(self):
        k, v = P.finalize(
            np.array([0, 1]), np.array([1.0, 2.0]),
            np.array([1, 2]), np.array([20.0, 30.0]),
            np.dtype(np.float64), None, False, False, np.add,
        )
        assert list(k) == [0, 1, 2]
        assert list(v) == [1.0, 22.0, 30.0]

    def test_mask_merge_keeps_outside(self):
        k, v = P.finalize(
            np.array([0, 1]), np.array([1.0, 2.0]),
            np.array([0, 1]), np.array([10.0, 20.0]),
            np.dtype(np.float64), np.array([1]), False, False, None,
        )
        # inside mask {1}: new value; outside: old value kept
        assert list(k) == [0, 1]
        assert list(v) == [1.0, 20.0]

    def test_mask_replace_drops_outside(self):
        k, v = P.finalize(
            np.array([0, 1]), np.array([1.0, 2.0]),
            np.array([0, 1]), np.array([10.0, 20.0]),
            np.dtype(np.float64), np.array([1]), False, True, None,
        )
        assert list(k) == [1] and list(v) == [20.0]

    def test_mask_deletes_inside_entries_missing_from_result(self):
        # T empty inside the mask -> the old C entry there is deleted
        k, v = P.finalize(
            np.array([0, 1]), np.array([1.0, 2.0]),
            np.array([], dtype=np.int64), np.array([], dtype=np.float64),
            np.dtype(np.float64), np.array([1]), False, False, None,
        )
        assert list(k) == [0]

    def test_complemented_mask(self):
        k, v = P.finalize(
            np.array([0, 1]), np.array([1.0, 2.0]),
            np.array([0, 1]), np.array([10.0, 20.0]),
            np.dtype(np.float64), np.array([1]), True, False, None,
        )
        # complement of {1} over stored keys: inside = {0}
        assert list(k) == [0, 1]
        assert list(v) == [10.0, 2.0]

    def test_output_dtype_cast(self):
        _, v = P.finalize(
            np.array([], dtype=np.int64), np.array([], dtype=np.float64),
            np.array([0]), np.array([2.7]),
            np.dtype(np.int64), None, False, False, None,
        )
        assert v.dtype == np.int64 and v[0] == 2
