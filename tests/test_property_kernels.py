"""Property-based tests (hypothesis) on the core invariants of the
backend: algebraic structure of the operator table, set structure of the
elementwise operations, mask/replace laws, and transpose involution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.kernels import (
    OpDesc,
    ewise_add_vec,
    ewise_mult_vec,
    mxm,
    mxv,
    reduce_vec_scalar,
)
from repro.backend.smatrix import SparseMatrix
from repro.backend.svector import SparseVector

SIZE = 10

@st.composite
def sparse_vec(draw, size=SIZE, dtype=np.float64):
    n = draw(st.integers(0, size))
    idx = draw(
        st.lists(st.integers(0, size - 1), min_size=n, max_size=n, unique=True)
    )
    if np.dtype(dtype).kind == "f":
        vals = draw(
            st.lists(
                st.floats(-100, 100, allow_nan=False), min_size=n, max_size=n
            )
        )
    else:
        vals = draw(st.lists(st.integers(-100, 100), min_size=n, max_size=n))
    return SparseVector.from_coo(size, idx, np.asarray(vals, dtype=dtype), dtype)

@st.composite
def sparse_mat(draw, nrows=SIZE, ncols=SIZE, dtype=np.float64):
    n = draw(st.integers(0, nrows * ncols // 2))
    flat = draw(
        st.lists(st.integers(0, nrows * ncols - 1), min_size=n, max_size=n, unique=True)
    )
    if np.dtype(dtype).kind == "f":
        vals = draw(
            st.lists(st.floats(-100, 100, allow_nan=False), min_size=n, max_size=n)
        )
    else:
        vals = draw(st.lists(st.integers(-100, 100), min_size=n, max_size=n))
    rows = [f // ncols for f in flat]
    cols = [f % ncols for f in flat]
    return SparseMatrix.from_coo(nrows, ncols, rows, cols, np.asarray(vals, dtype=dtype), dtype)

class TestEWiseStructure:
    @settings(max_examples=60, deadline=None)
    @given(u=sparse_vec(), v=sparse_vec())
    def test_add_pattern_is_union(self, u, v):
        w = ewise_add_vec(SparseVector.empty(SIZE, np.float64), u, v, "Plus")
        assert set(w.indices) == set(u.indices) | set(v.indices)

    @settings(max_examples=60, deadline=None)
    @given(u=sparse_vec(), v=sparse_vec())
    def test_mult_pattern_is_intersection(self, u, v):
        w = ewise_mult_vec(SparseVector.empty(SIZE, np.float64), u, v, "Times")
        assert set(w.indices) == set(u.indices) & set(v.indices)

    @settings(max_examples=40, deadline=None)
    @given(u=sparse_vec(), v=sparse_vec())
    def test_add_passthrough_outside_intersection(self, u, v):
        w = ewise_add_vec(SparseVector.empty(SIZE, np.float64), u, v, "Plus")
        du, dv, dw = u.to_dict(), v.to_dict(), w.to_dict()
        for i, val in dw.items():
            if i in du and i not in dv:
                assert val == du[i]
            if i in dv and i not in du:
                assert val == dv[i]

    @settings(max_examples=40, deadline=None)
    @given(u=sparse_vec(), v=sparse_vec())
    def test_plus_commutes(self, u, v):
        w1 = ewise_add_vec(SparseVector.empty(SIZE, np.float64), u, v, "Plus")
        w2 = ewise_add_vec(SparseVector.empty(SIZE, np.float64), v, u, "Plus")
        assert w1.to_dict() == w2.to_dict()

class TestMaskLaws:
    @settings(max_examples=60, deadline=None)
    @given(u=sparse_vec(), v=sparse_vec(), m=sparse_vec(dtype=np.int64), c=sparse_vec())
    def test_mask_and_complement_partition(self, u, v, m, c):
        """Masked + complement-masked replace outputs partition the
        unmasked output's pattern."""
        plain = ewise_add_vec(c.copy(), u, v, "Plus", OpDesc())
        masked = ewise_add_vec(
            c.copy(), u, v, "Plus", OpDesc(mask=m, replace=True)
        )
        comp = ewise_add_vec(
            c.copy(), u, v, "Plus", OpDesc(mask=m, complement=True, replace=True)
        )
        got = set(masked.indices) | set(comp.indices)
        assert got == set(plain.indices)
        assert set(masked.indices).isdisjoint(set(comp.indices))

    @settings(max_examples=60, deadline=None)
    @given(u=sparse_vec(), v=sparse_vec(), m=sparse_vec(dtype=np.int64), c=sparse_vec())
    def test_replace_output_within_mask(self, u, v, m, c):
        masked = ewise_add_vec(c, u, v, "Plus", OpDesc(mask=m, replace=True))
        mask_true = set(m.bool_indices())
        assert set(masked.indices) <= mask_true

    @settings(max_examples=60, deadline=None)
    @given(u=sparse_vec(), v=sparse_vec(), m=sparse_vec(dtype=np.int64), c=sparse_vec())
    def test_merge_preserves_outside_mask(self, u, v, m, c):
        merged = ewise_add_vec(c, u, v, "Plus", OpDesc(mask=m, replace=False))
        mask_true = set(m.bool_indices())
        dc, dm = c.to_dict(), merged.to_dict()
        for i in range(SIZE):
            if i not in mask_true:
                assert (i in dm) == (i in dc)
                if i in dc:
                    assert dm[i] == dc[i]

class TestSemiringLaws:
    @settings(max_examples=30, deadline=None)
    @given(a=sparse_mat(), u=sparse_vec(), v=sparse_vec())
    def test_mxv_distributes_over_ewise_add(self, a, u, v):
        """A(u ⊕ v) == Au ⊕ Av over (plus, times) — linearity, which only
        holds when u and v have identical patterns (GraphBLAS implied
        zeros break it otherwise)."""
        common = sorted(set(u.indices) & set(v.indices))
        if not common:
            return
        uu = SparseVector.from_coo(SIZE, common, [u.get(i) for i in common])
        vv = SparseVector.from_coo(SIZE, common, [v.get(i) for i in common])
        s = ewise_add_vec(SparseVector.empty(SIZE, np.float64), uu, vv, "Plus")
        left = mxv(SparseVector.empty(SIZE, np.float64), a, s, "Plus", "Times")
        au = mxv(SparseVector.empty(SIZE, np.float64), a, uu, "Plus", "Times")
        av = mxv(SparseVector.empty(SIZE, np.float64), a, vv, "Plus", "Times")
        right = ewise_add_vec(SparseVector.empty(SIZE, np.float64), au, av, "Plus")
        lgot, rgot = left.to_dict(), right.to_dict()
        assert set(lgot) == set(rgot)
        for k in lgot:
            assert abs(lgot[k] - rgot[k]) < 1e-6 * max(1.0, abs(rgot[k]))

    @settings(max_examples=20, deadline=None)
    @given(a=sparse_mat(), b=sparse_mat(), c=sparse_mat())
    def test_mxm_associates(self, a, b, c):
        """(AB)C == A(BC) over (plus, times), up to float tolerance."""
        empty = lambda: SparseMatrix.empty(SIZE, SIZE, np.float64)
        ab = mxm(empty(), a, b, "Plus", "Times")
        left = mxm(empty(), ab, c, "Plus", "Times")
        bc = mxm(empty(), b, c, "Plus", "Times")
        right = mxm(empty(), a, bc, "Plus", "Times")
        lgot, rgot = left.to_dict(), right.to_dict()
        for k in set(lgot) | set(rgot):
            lv = lgot.get(k, 0.0)
            rv = rgot.get(k, 0.0)
            assert abs(lv - rv) < 1e-6 * max(1.0, abs(lv), abs(rv))

    @settings(max_examples=40, deadline=None)
    @given(u=sparse_vec())
    def test_reduce_min_bounds_all(self, u):
        if u.nvals == 0:
            return
        m = reduce_vec_scalar(u, "Min")
        assert all(m <= v for v in u.values)

    @settings(max_examples=40, deadline=None)
    @given(u=sparse_vec())
    def test_reduce_plus_equals_sum(self, u):
        s = reduce_vec_scalar(u, "Plus")
        assert abs(s - float(u.values.sum())) < 1e-9

class TestTranspose:
    @settings(max_examples=50, deadline=None)
    @given(a=sparse_mat(nrows=7, ncols=11))
    def test_involution(self, a):
        assert a.transposed().transposed().to_dict() == a.to_dict()

    @settings(max_examples=50, deadline=None)
    @given(a=sparse_mat(nrows=7, ncols=11))
    def test_transpose_swaps_coordinates(self, a):
        t = a.transposed().to_dict()
        assert t == {(j, i): v for (i, j), v in a.to_dict().items()}

    @settings(max_examples=30, deadline=None)
    @given(a=sparse_mat(), b=sparse_mat())
    def test_product_transpose_identity(self, a, b):
        """(AB)ᵀ == BᵀAᵀ over the arithmetic semiring."""
        empty = lambda: SparseMatrix.empty(SIZE, SIZE, np.float64)
        left = mxm(empty(), a, b, "Plus", "Times").transposed()
        right = mxm(empty(), b, a, "Plus", "Times", transpose_a=True, transpose_b=True)
        lgot, rgot = left.to_dict(), right.to_dict()
        assert set(lgot) == set(rgot)
        for k in lgot:
            assert abs(lgot[k] - rgot[k]) < 1e-6 * max(1.0, abs(rgot[k]))

class TestBuildInvariants:
    @settings(max_examples=50, deadline=None)
    @given(v=sparse_vec())
    def test_indices_strictly_increasing(self, v):
        assert (np.diff(v.indices) > 0).all() if v.nvals > 1 else True

    @settings(max_examples=50, deadline=None)
    @given(a=sparse_mat())
    def test_csr_invariants(self, a):
        assert a.indptr[0] == 0
        assert a.indptr[-1] == a.nvals
        assert (np.diff(a.indptr) >= 0).all()
        for i in range(a.nrows):
            row = a.indices[a.indptr[i] : a.indptr[i + 1]]
            if row.size > 1:
                assert (np.diff(row) > 0).all()

    @settings(max_examples=50, deadline=None)
    @given(v=sparse_vec())
    def test_dense_roundtrip(self, v):
        dense = v.to_dense()
        back = {i: dense[i] for i in v.indices}
        assert back == v.to_dict()
