"""Failure-injection and concurrency tests for the JIT pipeline.

The disk cache is shared state touched by multiple threads/processes;
these tests pin down the behaviours that keep it safe: one compile per
spec under racing threads, graceful errors on corrupted artifacts and
failing compilers, and stale-version invalidation.
"""

import threading

import numpy as np
import pytest

import repro as gb
from repro.backend.kernels import OpDesc
from repro.backend.svector import SparseVector
from repro.exceptions import BackendUnavailable, CompilationError
from repro.jit.cache import JitCache
from repro.jit.pycodegen import generate_source
from repro.jit.pyengine import PyJitEngine
from repro.jit.spec import KernelSpec


def _spec(**extra):
    base = dict(
        a="float64", u="float64", c="float64", t_dtype="float64",
        add="Plus", mult="Times", ta=False,
        mask="none", comp=False, repl=False, accum="none",
    )
    base.update(extra)
    return KernelSpec.make("mxv", **base)


class TestConcurrency:
    def test_racing_threads_compile_once(self, tmp_path):
        cache = JitCache(tmp_path)
        spec = _spec()
        barrier = threading.Barrier(8)
        results = []
        errors = []

        def worker():
            try:
                barrier.wait()
                results.append(cache.get_module(spec, generate_source))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.stats.compiles == 1
        assert all(m is results[0] for m in results)

    def test_concurrent_dsl_use_across_threads(self, tmp_path):
        """Different threads share the engine's cache safely and keep
        independent operator contexts."""
        errors = []

        def worker(seed):
            try:
                rng = np.random.default_rng(seed)
                a = gb.Matrix(rng.uniform(size=(6, 6)))
                u = gb.Vector(rng.uniform(size=6))
                with gb.MinPlusSemiring:
                    w = gb.Vector(a @ u)
                assert w.nvals > 0
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestFailureInjection:
    def test_corrupted_disk_artifact_rebuilt_transparently(self, tmp_path):
        """A corrupted artifact fails the manifest checksum on the next
        disk hit and is rebuilt in place — the caller never sees it."""
        cache = JitCache(tmp_path)
        spec = _spec()
        cache.get_module(spec, generate_source)
        cache.clear_memory()
        artifact = next(tmp_path.glob("pygb_mxv_*.py"))
        artifact.write_text("def run(:::  # truncated write")
        module = cache.get_module(spec, generate_source)
        assert hasattr(module, "run")
        assert cache.stats.integrity_rebuilds == 1
        # the rebuilt artifact is whole again
        assert "def run(:::" not in artifact.read_text()

    def test_truncated_artifact_with_stale_manifest_rebuilt(self, tmp_path):
        """Truncation (killed mid-write) is caught by the size fast path."""
        cache = JitCache(tmp_path)
        spec = _spec()
        cache.get_module(spec, generate_source)
        cache.clear_memory()
        artifact = next(tmp_path.glob("pygb_mxv_*.py"))
        data = artifact.read_bytes()
        artifact.write_bytes(data[: len(data) // 2])
        module = cache.get_module(spec, generate_source)
        assert hasattr(module, "run")
        assert cache.stats.integrity_rebuilds == 1

    def test_generator_exception_propagates(self, tmp_path):
        cache = JitCache(tmp_path)

        def broken(_spec):
            raise RuntimeError("generator exploded")

        with pytest.raises(RuntimeError):
            cache.get_module(_spec(), broken)
        # and nothing half-written is left behind to poison later lookups
        assert not list(tmp_path.glob("pygb_mxv_*.py"))
        cache.get_module(_spec(), generate_source)  # recovers

    def test_cache_dir_created_on_demand(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "cache"
        cache = JitCache(target)
        cache.get_module(_spec(), generate_source)
        assert target.is_dir()

    def test_version_bump_isolates_artifacts(self, tmp_path):
        """Specs embed the codegen version, so two library versions can
        never load each other's artifacts (they hash differently)."""
        import repro.jit.spec as spec_mod

        h1 = _spec().key_hash
        old = spec_mod.CODEGEN_VERSION
        try:
            spec_mod.CODEGEN_VERSION = old + 1
            h2 = _spec().key_hash  # key embeds the version at access time
        finally:
            spec_mod.CODEGEN_VERSION = old
        assert h1 != h2


@pytest.mark.cpp
class TestCppFailureInjection:
    @pytest.fixture(autouse=True)
    def _need_compiler(self):
        from repro.jit.cppengine import toolchain_works

        if not toolchain_works():
            pytest.skip("no working C++ toolchain")

    def test_invalid_cpp_source_reports_gxx_stderr(self, tmp_path):
        from repro.jit.cppengine import CppJitEngine

        eng = CppJitEngine(JitCache(tmp_path))
        with pytest.raises(CompilationError) as exc:
            eng.cache.get_module(
                _spec(), lambda s: "this is not C++ at all;",
                suffix=".cpp", compiler=eng._compile,
            )
        assert "g++" in str(exc.value) or "error" in str(exc.value)

    def test_missing_compiler_raises_backend_unavailable(self, monkeypatch):
        import repro.jit.cppengine as ce

        monkeypatch.setattr(ce, "find_cxx_compiler", lambda: None)
        with pytest.raises(BackendUnavailable):
            ce.CppJitEngine()


class TestExplicitEngineSelection:
    def test_use_engine_cpp_raises_eagerly_without_compiler(self, monkeypatch):
        """An explicitly requested cpp engine with a bogus $PYGB_CXX is a
        configuration error and must fail at use_engine() time, not be
        silently degraded like the env-selected default."""
        monkeypatch.setenv("PYGB_CXX", "/nonexistent/pygb-test-compiler")
        with pytest.raises(BackendUnavailable):
            gb.use_engine("cpp")


class TestEngineRobustness:
    def test_pyjit_engine_survives_cache_clear_mid_session(self, tmp_path):
        eng = PyJitEngine(JitCache(tmp_path))
        u = SparseVector.from_coo(4, [0], [1.0])
        w = SparseVector.empty(4, np.float64)
        eng.ewise_add_vec(w, u, u, "Plus", OpDesc())
        eng.cache.clear_disk()
        out = eng.ewise_add_vec(w, u, u, "Plus", OpDesc())
        assert out.to_dict() == {0: 2.0}

    def test_env_selected_engine(self, monkeypatch):
        monkeypatch.setenv("PYGB_BACKEND", "interpreted")

        # a thread with no cached engine resolves from the env var
        seen = {}

        def worker():
            seen["name"] = gb.current_backend_engine().name

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["name"] == "interpreted"
