"""The schedule layer (``repro.schedule``): direction-optimizing traversal.

Four layers of coverage:

* **unit** — ``$PYGB_SCHEDULE`` parsing, the :class:`Scheduled` context,
  the deterministic counters, the explore-then-exploit autotuner, and
  :meth:`Schedule.resolve` feasibility rules (unmasked pull degrades to
  dense and counts a fallback; switches are detected per call site);
* **bit-identity** — every mode (``fixed``/``push``/``pull``/``auto``)
  produces *exactly* the same result dict as the legacy dense strategy,
  per engine, across mxv/vxm × transpose × mask/complement grids, for
  arithmetic and logical (early-exit) semirings, in blocking and
  nonblocking execution;
* **determinism** — the edges-examined counters are engine-independent:
  interpreted and pyjit report identical numbers for a forced direction;
* **integration** — BFS under ``schedule="push"`` examines fewer edges
  than the dense sweep on a power-law graph; a pinned direction refuses
  plan fusion but still computes the right answer; the frontier
  representations memoized on ``SparseVector`` are built once.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

import repro as gb
from repro import schedule as S
from repro.backend.kernels import OpDesc
from repro.core.context import use_engine
from repro.core.dispatch import CountingEngine, make_engine

from helpers import mat_from_dict, random_mat_dict, random_vec_dict, vec_from_dict

MODES = ("fixed", "push", "pull", "auto")

N = 24


@pytest.fixture(autouse=True)
def _fresh_schedule_state():
    """Counter/tuner state is process-global; isolate every test."""
    S.reset_stats()
    yield
    S.reset_stats()


# ----------------------------------------------------------------------
# unit: mode parsing, the Scheduled context, counters
# ----------------------------------------------------------------------


class TestModeParsing:
    @pytest.mark.parametrize(
        "raw,expect",
        [
            ("", "auto"),
            ("auto", "auto"),
            ("AUTO", "auto"),
            ("fixed", "fixed"),
            ("dense", "fixed"),
            ("0", "fixed"),
            ("off", "fixed"),
            ("no", "fixed"),
            ("push", "push"),
            ("PULL", "pull"),
        ],
    )
    def test_env_values(self, monkeypatch, raw, expect):
        monkeypatch.setenv("PYGB_SCHEDULE", raw)
        assert S.schedule_mode() == expect

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("PYGB_SCHEDULE", raising=False)
        assert S.schedule_mode() == "auto"

    def test_unknown_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("PYGB_SCHEDULE", "sideways")
        with pytest.warns(UserWarning, match="PYGB_SCHEDULE"):
            assert S.schedule_mode() == "auto"

    def test_tuner_gate(self, monkeypatch):
        monkeypatch.delenv("PYGB_SCHEDULE_TUNER", raising=False)
        assert S.tuner_enabled()
        monkeypatch.setenv("PYGB_SCHEDULE_TUNER", "0")
        assert not S.tuner_enabled()
        monkeypatch.setenv("PYGB_SCHEDULE_TUNER", "off")
        assert not S.tuner_enabled()


class TestScheduledContext:
    def test_fixed_normalizes_to_dense(self):
        assert S.Scheduled("fixed").direction == "dense"
        assert S.Scheduled(" Push ").direction == "push"

    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError, match="bad schedule direction"):
            S.Scheduled("sideways")

    def test_context_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("PYGB_SCHEDULE", "push")
        with S.Scheduled("pull"):
            sched = S.Schedule.capture()
            assert sched.forced == "pull"
        sched = S.Schedule.capture()
        assert sched.mode == "push" and sched.forced is None

    def test_innermost_context_wins(self):
        with S.Scheduled("push"), S.Scheduled("dense"):
            assert S.Schedule.capture().forced == "dense"


class TestCounters:
    def test_note_edges_accumulates(self):
        S.note_edges("push", 5)
        S.note_edges("push", 2)
        S.note_edges("dense", 1)
        st = S.stats()
        assert st["edges"]["push"] == 7
        assert st["edges"]["dense"] == 1
        assert st["edges_total"] == 8

    def test_reset_zeroes_everything(self):
        S.note_edges("pull", 9)
        S.reset_stats()
        st = S.stats()
        assert st["edges_total"] == 0 and st["calls_total"] == 0
        assert st["switches"] == 0 and st["fallbacks"] == 0


# ----------------------------------------------------------------------
# unit: the autotuner
# ----------------------------------------------------------------------


class TestAutoTuner:
    SITE = ("mxv", 8, 8, 30, False)
    BUCKET = (2, 3)

    def test_explore_then_exploit(self):
        t = S.AutoTuner()
        cands = [("push", 10), ("pull", 20)]
        picks = []
        for _ in range(4):
            d, by = t.choose(self.SITE, self.BUCKET, cands)
            picks.append((d, by))
            # make pull observably faster than push
            t.note(self.SITE, self.BUCKET, d, 1_000 if d == "pull" else 500_000)
        assert picks == [("push", "explore")] * 2 + [("pull", "explore")] * 2
        assert t.choose(self.SITE, self.BUCKET, cands) == ("pull", "tuner")

    def test_band_excludes_expensive_direction(self):
        t = S.AutoTuner()
        # dense is 100x the modeled optimum: never sampled, no timing risk
        cands = [("push", 10), ("dense", 1000)]
        assert t.choose(self.SITE, self.BUCKET, cands) == ("push", "heuristic")

    def test_reset_forgets_observations(self):
        t = S.AutoTuner()
        t.note(self.SITE, self.BUCKET, "push", 100)
        assert t.observations(self.SITE, self.BUCKET, "push") == 1
        t.reset()
        assert t.observations(self.SITE, self.BUCKET, "push") == 0


# ----------------------------------------------------------------------
# unit: Schedule.resolve feasibility and switch detection
# ----------------------------------------------------------------------


def _stores(n=8, seed=0):
    rng = np.random.default_rng(seed)
    a = mat_from_dict(random_mat_dict(rng, n, n), n, n)
    u = vec_from_dict(random_vec_dict(rng, n), n)
    mask_d = random_vec_dict(rng, n, density=0.6, dtype=bool)
    mask = vec_from_dict(mask_d, n, dtype=bool)
    return a._store, u._store, mask._store, mask_d


class TestResolve:
    def test_unmasked_pull_falls_back_to_dense(self):
        a, u, _, _ = _stores()
        sched = S.Schedule("pull").resolve("mxv", a, u, OpDesc(), False, "LogicalOr")
        assert sched.direction == "dense"
        assert sched.chosen_by == "fallback"
        assert S.stats()["fallbacks"] == 1
        assert S.stats()["calls"]["dense"] == 1

    def test_masked_pull_candidates_are_true_set(self):
        a, u, m, mask_d = _stores()
        sched = S.Schedule("auto", forced="pull").resolve(
            "mxv", a, u, OpDesc(mask=m), False, "LogicalOr"
        )
        assert sched.direction == "pull"
        assert sched.frontier == "bitmap"
        expected = sorted(i for i, v in mask_d.items() if v)
        np.testing.assert_array_equal(sched.candidates, expected)

    def test_complemented_mask_candidates(self):
        a, u, m, mask_d = _stores()
        sched = S.Schedule("pull").resolve(
            "mxv", a, u, OpDesc(mask=m, complement=True), False, "LogicalOr"
        )
        n = u.size
        expected = sorted(set(range(n)) - {i for i, v in mask_d.items() if v})
        np.testing.assert_array_equal(sched.candidates, expected)

    def test_auto_heuristic_prefers_push_for_sparse_frontier(self, monkeypatch):
        monkeypatch.setenv("PYGB_SCHEDULE_TUNER", "0")
        n = 32
        rng = np.random.default_rng(1)
        a = mat_from_dict(random_mat_dict(rng, n, n, density=0.4), n, n)
        u = gb.Vector(([1.0], [3]), shape=(n,), dtype=np.float64)
        sched = S.Schedule("auto").resolve(
            "mxv", a._store, u._store, OpDesc(), False, "Plus"
        )
        assert sched.direction == "push"
        assert sched.chosen_by == "heuristic"

    def test_empty_frontier_is_free_push(self, monkeypatch):
        monkeypatch.setenv("PYGB_SCHEDULE_TUNER", "0")
        a, _, _, _ = _stores()
        u = gb.Vector(shape=(8,), dtype=np.float64)
        sched = S.Schedule("auto").resolve(
            "mxv", a, u._store, OpDesc(), False, "Plus"
        )
        assert sched.direction == "push"

    def test_switch_detected_per_site(self):
        a, u, _, _ = _stores()
        S.Schedule("push").resolve("mxv", a, u, OpDesc(), False, "Plus")
        assert S.stats()["switches"] == 0
        S.Schedule("fixed").resolve("mxv", a, u, OpDesc(), False, "Plus")
        assert S.stats()["switches"] == 1
        # same direction again: no new switch
        S.Schedule("fixed").resolve("mxv", a, u, OpDesc(), False, "Plus")
        assert S.stats()["switches"] == 1

    def test_pins_direction(self):
        assert S.Schedule("push").pins_direction
        assert S.Schedule("auto", forced="pull").pins_direction
        assert not S.Schedule("auto").pins_direction
        assert not S.Schedule("fixed").pins_direction


# ----------------------------------------------------------------------
# bit-identity: every mode matches the dense strategy exactly, per engine
# ----------------------------------------------------------------------


def _traversal(mode, a, u, mask, *, vxm=False, ta=False, complement=False,
               semiring=None, dtype=np.float64, nonblocking=False):
    """One masked/unmasked traversal under *mode*; returns the exact
    result store dict."""
    out = gb.Vector(shape=(u.shape[0],), dtype=dtype)
    semiring = semiring if semiring is not None else gb.ArithmeticSemiring
    mat = a.T if ta else a
    exec_ctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
    with exec_ctx:
        with S.Scheduled(mode), semiring:
            expr = (u @ mat) if vxm else (mat @ u)
            if mask is None:
                out[None] = expr
            elif complement:
                out[~mask] = expr
            else:
                out[mask] = expr
    return out._store.to_dict()


def _containers(rng, n=N, dtype=np.float64):
    a = mat_from_dict(random_mat_dict(rng, n, n, density=0.25, dtype=dtype), n, n, dtype)
    u = vec_from_dict(random_vec_dict(rng, n, density=0.4, dtype=dtype), n, dtype)
    mask = vec_from_dict(
        random_vec_dict(rng, n, density=0.6, dtype=bool), n, dtype=bool
    )
    return a, u, mask


class TestBitIdentity:
    @pytest.mark.parametrize("vxm", [False, True], ids=["mxv", "vxm"])
    @pytest.mark.parametrize("ta", [False, True], ids=["a", "aT"])
    @pytest.mark.parametrize("maskkind", ["none", "mask", "comp"])
    def test_arithmetic_grid(self, engine, rng, vxm, ta, maskkind):
        a, u, mask = _containers(rng)
        kw = dict(
            vxm=vxm,
            ta=ta,
            mask=None if maskkind == "none" else mask,
            complement=maskkind == "comp",
        )
        base = _traversal("fixed", a, u, **kw)
        for mode in MODES:
            assert _traversal(mode, a, u, **kw) == base, f"{mode} diverged"

    @pytest.mark.parametrize("maskkind", ["mask", "comp"])
    def test_logical_early_exit_grid(self, engine, rng, maskkind):
        """LogicalOr/LogicalAnd over bool containers — the pull early-exit
        kernel — must match dense exactly, including False stored entries."""
        a, u, _ = _containers(rng, dtype=np.bool_)
        mask = vec_from_dict(
            random_vec_dict(rng, N, density=0.7, dtype=bool), N, dtype=bool
        )
        kw = dict(
            ta=True,
            mask=mask,
            complement=maskkind == "comp",
            semiring=gb.LogicalSemiring,
            dtype=np.bool_,
        )
        base = _traversal("fixed", a, u, **kw)
        for mode in MODES:
            assert _traversal(mode, a, u, **kw) == base, f"{mode} diverged"

    @pytest.mark.parametrize("mode", ["push", "pull", "auto"])
    def test_nonblocking_matches_blocking(self, engine, rng, mode):
        a, u, mask = _containers(rng)
        blocking = _traversal(mode, a, u, mask, ta=True)
        queued = _traversal(mode, a, u, mask, ta=True, nonblocking=True)
        assert queued == blocking

    def test_minplus_sssp_shaped(self, engine, rng):
        """Unmasked Min/Plus relaxation (pull falls back to dense)."""
        a, u, _ = _containers(rng)
        base = _traversal("fixed", a, u, None, ta=True, semiring=gb.MinPlusSemiring)
        for mode in MODES:
            got = _traversal(mode, a, u, None, ta=True, semiring=gb.MinPlusSemiring)
            assert got == base, f"{mode} diverged"
        assert S.stats()["fallbacks"] >= 1  # the forced-pull leg degraded


# ----------------------------------------------------------------------
# determinism: counters are engine-independent
# ----------------------------------------------------------------------


class TestCounterDeterminism:
    @pytest.mark.parametrize("mode", ["fixed", "push", "pull"])
    def test_edges_match_across_engines(self, rng, mode):
        a, u, mask = _containers(rng)
        per_engine = {}
        for eng in ("interpreted", "pyjit"):
            S.reset_stats()
            with use_engine(eng):
                result = _traversal(mode, a, u, mask, ta=True)
            per_engine[eng] = (S.stats(), result)
        (si, ri), (sj, rj) = per_engine["interpreted"], per_engine["pyjit"]
        assert ri == rj
        assert si["edges"] == sj["edges"]
        assert si["calls"] == sj["calls"]
        direction = {"fixed": "dense"}.get(mode, mode)
        assert si["calls"][direction] == 1
        assert si["edges"][direction] > 0


# ----------------------------------------------------------------------
# integration: algorithms, fusion gate, obs surfacing, memoized frontiers
# ----------------------------------------------------------------------


class TestAlgorithms:
    @pytest.mark.parametrize("mode", [None, "fixed", "push", "pull", "auto"])
    def test_bfs_modes_identical(self, engine, small_graph, mode):
        from repro.algorithms import bfs_levels

        base = bfs_levels(small_graph, 0, schedule="fixed")
        got = bfs_levels(small_graph, 0, schedule=mode)
        assert got._store.to_dict() == base._store.to_dict()

    @pytest.mark.parametrize("mode", [None, "fixed", "push", "auto"])
    def test_sssp_modes_identical(self, engine, mode):
        from repro.algorithms import sssp_distances
        from repro.io.generators import erdos_renyi

        g = erdos_renyi(30, seed=5, weighted=True, dtype=float)
        base = sssp_distances(g, 0, schedule="fixed")
        got = sssp_distances(g, 0, schedule=mode)
        assert got._store.to_dict() == base._store.to_dict()

    @pytest.mark.parametrize("mode", [None, "fixed", "push", "auto"])
    def test_pagerank_modes_identical(self, engine, mode):
        from repro.algorithms import pagerank
        from repro.io.generators import scale_free

        g = scale_free(40, out_degree=3, seed=7)
        base = pagerank(g, gb.Vector(shape=(40,), dtype=float), schedule="fixed")
        got = pagerank(g, gb.Vector(shape=(40,), dtype=float), schedule=mode)
        assert got._store.to_dict() == base._store.to_dict()

    def test_push_examines_fewer_edges_on_power_law(self, engine):
        from repro.algorithms import bfs_levels
        from repro.io.generators import rmat

        g = rmat(7, edge_factor=8, seed=4)
        S.reset_stats()
        dense_levels = bfs_levels(g, 0, schedule="fixed")
        dense_edges = S.stats()["edges"]["dense"]
        S.reset_stats()
        push_levels = bfs_levels(g, 0, schedule="push")
        push_edges = S.stats()["edges"]["push"]
        assert push_levels._store.to_dict() == dense_levels._store.to_dict()
        assert S.stats()["calls"]["push"] > 0
        assert push_edges * 2 <= dense_edges

    def test_auto_bfs_switches_and_stays_correct(self, engine, monkeypatch):
        """Pure cost model (tuner off): deterministic direction choices,
        fewer examined edges than the dense sweep, identical levels."""
        from repro.algorithms import bfs_levels
        from repro.io.generators import rmat

        monkeypatch.setenv("PYGB_SCHEDULE_TUNER", "0")
        g = rmat(7, edge_factor=8, seed=4)
        base = bfs_levels(g, 0, schedule="fixed")
        S.reset_stats()
        auto_levels = bfs_levels(g, 0, schedule="auto")
        st = S.stats()
        assert auto_levels._store.to_dict() == base._store.to_dict()
        assert st["calls"]["dense"] == 0  # every level found a better direction
        S.reset_stats()
        bfs_levels(g, 0, schedule="fixed")
        assert st["edges_total"] * 2 <= S.stats()["edges"]["dense"]


class TestFusionGate:
    def _fused_shape(self, mode):
        """`(A @ u) * 2` — the mxv+apply pair the planner fuses."""
        rng = np.random.default_rng(11)
        a = mat_from_dict(random_mat_dict(rng, N, N, density=0.25), N, N)
        u = vec_from_dict(random_vec_dict(rng, N, density=0.5), N)
        out = gb.Vector(shape=(N,), dtype=np.float64)
        eng = CountingEngine(make_engine("pyjit"))
        with gb.use_engine(eng), S.Scheduled(mode), gb.ArithmeticSemiring:
            out[None] = (a @ u) * 2
        return eng, out._store.to_dict()

    def test_pinned_push_blocks_fusion(self, monkeypatch):
        monkeypatch.setenv("PYGB_FUSION", "1")
        fused_eng, fused = self._fused_shape("auto")
        assert fused_eng.counts.get("mxv_apply") == 1
        pinned_eng, pinned = self._fused_shape("push")
        assert "mxv_apply" not in pinned_eng.counts
        assert pinned_eng.counts.get("mxv") == 1
        assert pinned == fused  # same answer either way


class TestObsIntegration:
    def test_span_attrs_and_stats_rollup(self, small_graph):
        from repro.algorithms import bfs_levels

        with use_engine("interpreted"), gb.tracing() as tr:
            bfs_levels(small_graph, 0, schedule="push")
        snap = tr.stats.snapshot()
        assert snap["schedule"]["directions"].get("push", 0) > 0
        assert "mode" in snap["schedule"]["chosen_by"]

    def test_switch_event_recorded(self, small_graph):
        from repro.algorithms import bfs_levels

        with use_engine("interpreted"), gb.tracing() as tr:
            bfs_levels(small_graph, 0, schedule="push")
            bfs_levels(small_graph, 0, schedule="fixed")
        snap = tr.stats.snapshot()
        assert snap["schedule"]["switches"] >= 1

    def test_render_stats_mentions_schedule(self, small_graph):
        from repro.algorithms import bfs_levels
        from repro.obs.stats import render_stats

        with use_engine("interpreted"), gb.tracing() as tr:
            bfs_levels(small_graph, 0, schedule="pull")
        text = render_stats(tr.stats.snapshot())
        assert "traversal schedule" in text


class TestFrontierRepresentations:
    def test_bitmap_and_indices_memoized(self, rng):
        v = vec_from_dict(
            random_vec_dict(rng, 16, density=0.5, dtype=bool), 16, dtype=bool
        )._store
        assert v.true_bitmap() is v.true_bitmap()
        assert v.bool_indices() is v.bool_indices()
        vals, present = v.dense_lookup()
        vals2, present2 = v.dense_lookup()
        assert vals is vals2 and present is present2  # same memoized pair
        assert not v.true_bitmap().flags.writeable
        assert not present.flags.writeable

    def test_bitmap_matches_bool_indices(self, rng):
        d = random_vec_dict(rng, 32, density=0.5, dtype=bool)
        v = vec_from_dict(d, 32, dtype=bool)._store
        np.testing.assert_array_equal(
            np.flatnonzero(v.true_bitmap()), v.bool_indices()
        )
        expected = sorted(i for i, val in d.items() if val)
        np.testing.assert_array_equal(v.bool_indices(), expected)
