"""Tests for the ``select`` and ``kronecker`` operations."""

import numpy as np
import pytest

import repro as gb
from repro.exceptions import InvalidValue, UnknownOperator

from helpers import mat_from_dict, random_mat_dict


@pytest.fixture
def A(engine):
    return gb.Matrix([[1.0, -2.0, 0.0], [3.0, 4.0, -5.0], [0.0, 6.0, 7.0]])


class TestSelectPositional:
    def test_tril(self, A):
        L = gb.Matrix(gb.select("Tril", A))
        rows, cols, _ = L.to_coo()
        assert (cols <= rows).all()
        assert L.nvals == 6  # entries on/below the diagonal (incl. stored 0s)

    def test_tril_strict_via_thunk(self, A):
        L = gb.Matrix(gb.select("Tril", A, -1))
        rows, cols, _ = L.to_coo()
        assert (cols < rows).all()

    def test_triu(self, A):
        U = gb.Matrix(gb.select("Triu", A, 1))
        rows, cols, _ = U.to_coo()
        assert (cols > rows).all()

    def test_tril_plus_triu_partitions(self, A):
        L = gb.Matrix(gb.select("Tril", A))
        U = gb.Matrix(gb.select("Triu", A, 1))
        assert L.nvals + U.nvals == A.nvals

    def test_diag_and_offdiag(self, A):
        D = gb.Matrix(gb.select("Diag", A))
        rows, cols, _ = D.to_coo()
        assert (rows == cols).all()
        O = gb.Matrix(gb.select("Offdiag", A))
        assert D.nvals + O.nvals == A.nvals

    def test_diag_with_offset(self, A):
        D = gb.Matrix(gb.select("Diag", A, 1))
        assert D.nvals == 2 and D[0, 1] == -2.0 and D[1, 2] == -5.0

    def test_positional_rejected_on_vectors(self, engine):
        v = gb.Vector([1.0, 2.0])
        with pytest.raises(UnknownOperator):
            gb.Vector(gb.select("Tril", v))


class TestSelectValued:
    def test_nonzero_drops_stored_zeros(self, A):
        nz = gb.Matrix(gb.select("NonZero", A))
        assert nz.nvals == 7  # two stored zeros dropped
        _, _, vals = nz.to_coo()
        assert (vals != 0).all()

    @pytest.mark.parametrize(
        "op,thunk,expect",
        [
            ("ValueGT", 3.0, {4.0, 6.0, 7.0}),
            ("ValueGE", 4.0, {4.0, 6.0, 7.0}),
            ("ValueLT", 0.0, {-2.0, -5.0}),
            ("ValueLE", 0.0, {-2.0, -5.0, 0.0}),
            ("ValueEQ", 4.0, {4.0}),
        ],
    )
    def test_value_predicates(self, A, op, thunk, expect):
        out = gb.Matrix(gb.select(op, A, thunk))
        assert set(out.to_coo()[2].tolist()) == expect

    def test_value_ne(self, A):
        out = gb.Matrix(gb.select("ValueNE", A, 0.0))
        assert out.nvals == 7

    def test_vector_select(self, engine):
        v = gb.Vector([5.0, 0.0, -3.0, 8.0])
        big = gb.Vector(gb.select("ValueGT", v, 0.0))
        assert big.to_dict() if hasattr(big, "to_dict") else True
        idx, vals = big.to_coo()
        assert list(idx) == [0, 3] and list(vals) == [5.0, 8.0]

    def test_unknown_select_op(self, A):
        with pytest.raises(InvalidValue):
            gb.select("Weird", A)

    def test_select_with_mask_and_assignment(self, A, engine):
        C = gb.Matrix([[9.0, 9.0, 9.0]] * 3)
        mask = gb.Matrix(
            ([True] * 3, ([0, 1, 2], [0, 1, 2])), shape=(3, 3), dtype=bool
        )
        C[mask] = gb.select("NonZero", A)
        # diagonal of A: 1, 4, 7 (all nonzero) land under the mask
        assert C[0, 0] == 1.0 and C[1, 1] == 4.0 and C[2, 2] == 7.0
        assert C[0, 1] == 9.0  # outside mask untouched

    def test_select_transposed(self, A, engine):
        L = gb.Matrix(gb.select("Tril", gb.Matrix(A.T), -1))
        U = gb.Matrix(gb.select("Triu", A, 1))
        rows_l, cols_l, _ = L.to_coo()
        assert {(r, c) for r, c in zip(rows_l, cols_l)} == {
            (c, r) for r, c in zip(*U.to_coo()[:2])
        }


class TestLowerTriangleUsesSelectSemantics:
    def test_consistency_with_algorithm_helper(self, engine):
        from repro.algorithms import lower_triangle

        A = gb.Matrix(
            (np.ones(4), ([0, 1, 1, 2], [1, 0, 2, 1])), shape=(3, 3), dtype=int
        )
        via_helper = lower_triangle(A)
        via_select = gb.Matrix(gb.select("Tril", A, -1))
        assert via_helper.isequal(via_select)


class TestKronecker:
    def test_matches_numpy_kron(self, engine, rng):
        a = mat_from_dict(random_mat_dict(rng, 4, 3), 4, 3)
        b = mat_from_dict(random_mat_dict(rng, 2, 5), 2, 5)
        K = gb.Matrix(gb.kron(a, b))
        assert K.shape == (8, 15)
        assert np.allclose(K.to_numpy(), np.kron(a.to_numpy(), b.to_numpy()))

    def test_kron_with_identity_grows_block_diagonal(self, engine):
        eye = gb.Matrix(([1.0, 1.0], ([0, 1], [0, 1])), shape=(2, 2))
        b = gb.Matrix([[1.0, 2.0], [3.0, 4.0]])
        K = gb.Matrix(gb.kron(eye, b))
        expect = np.kron(np.eye(2), b.to_numpy())
        assert np.allclose(K.to_numpy(), expect)

    def test_kron_custom_op(self, engine):
        a = gb.Matrix([[2.0, 8.0]])
        b = gb.Matrix([[4.0]])
        K = gb.Matrix(gb.kron(a, b, op="Min"))
        assert list(K.to_numpy()[0]) == [2.0, 4.0]

    def test_kron_op_from_context(self, engine):
        a = gb.Matrix([[2.0]])
        b = gb.Matrix([[5.0]])
        with gb.BinaryOp("Plus"):
            K = gb.Matrix(gb.kron(a, b))
        assert K[0, 0] == 7.0

    def test_kron_empty_operand(self, engine):
        a = gb.Matrix(shape=(2, 2), dtype=float)
        b = gb.Matrix([[1.0]])
        K = gb.Matrix(gb.kron(a, b))
        assert K.shape == (2, 2) and K.nvals == 0

    def test_rmat_style_growth(self, engine):
        # Kronecker powers of a seed adjacency generate Graph500-style graphs
        seed = gb.Matrix(
            ([1.0, 1.0, 1.0], ([0, 0, 1], [0, 1, 0])), shape=(2, 2)
        )  # sparse build: no stored zeros
        g = seed
        for _ in range(3):
            g = gb.Matrix(gb.kron(g, seed))
        assert g.shape == (16, 16)
        assert g.nvals == 3**4  # nnz multiplies per power

    def test_kron_engines_agree(self, rng):
        a = mat_from_dict(random_mat_dict(rng, 3, 3), 3, 3)
        b = mat_from_dict(random_mat_dict(rng, 3, 3), 3, 3)
        outs = []
        for name in ("interpreted", "pyjit"):
            with gb.use_engine(name):
                outs.append(gb.Matrix(gb.kron(a, b)).to_numpy())
        assert np.array_equal(outs[0], outs[1])
