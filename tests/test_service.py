"""Graph service mode: protocol, admission batching, and the TCP server.

The contract under test, layer by layer:

* **protocol** — eager total validation with the stable error-code
  vocabulary; ``batch_key`` groups same-graph/same-algorithm requests
  while keeping the per-request source out of the key.
* **multi-source fusion** — ``bfs_levels_multi`` / ``sssp_distances_multi``
  rows are *bit-identical* to their solo single-source counterparts:
  fusion must be invisible to clients.
* **admission** — under ``hold()`` a parked volley forms deterministic
  batches; the counters (requests/batches/batched/fused) depend only on
  the admitted mix, never on wall-clock timing.
* **server** — malformed JSON, unknown graphs/algorithms, and oversized
  lines produce structured errors; a client disconnect mid-request is
  absorbed; a blown ``$PYGB_REQUEST_TIMEOUT`` budget comes back as a
  structured ``timeout`` response on a *live* connection, not a dropped
  one.
* **backend reentrancy** — concurrent first touches of the lazily
  memoized representations (matrix transpose, vector frontier reprs)
  build exactly once and share one object.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.backend.smatrix import SparseMatrix
from repro.backend.svector import SparseVector
from repro.algorithms import bfs_levels, sssp_distances
from repro.algorithms.multisource import (
    bfs_levels_multi,
    matrix_row,
    sssp_distances_multi,
)
from repro.exceptions import InvalidValue
from repro.io.generators import erdos_renyi
from repro import service
from repro.service import GraphRegistry, GraphServer, load_manifest
from repro.service.admission import solo_reference
from repro.service.protocol import ProtocolError, parse_request


# ----------------------------------------------------------------------
# fixtures and helpers
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(96, nedges=600, seed=11, weighted=True, dtype=float)


@pytest.fixture(scope="module")
def server(graph):
    registry = GraphRegistry()
    registry.add("er", graph)
    with GraphServer(registry).start() as srv:
        yield srv


@pytest.fixture(autouse=True)
def clean_counters():
    service.reset_stats()
    yield
    service.reset_stats()


def ask(srv, payloads, timeout=15.0):
    """Send *payloads* down one connection, return one parsed response
    per payload (requests without explicit sockets pipeline in order)."""
    with socket.create_connection((srv.host, srv.port), timeout=timeout) as sock:
        f = sock.makefile("rwb")
        for doc in payloads:
            f.write(json.dumps(doc).encode() + b"\n")
        f.flush()
        return [json.loads(f.readline()) for _ in payloads]


def parked_volley(srv, requests, timeout=10.0):
    """Submit *requests* from one client thread each while the admission
    queue is held, so they release as deterministic batches; returns the
    responses in request order."""
    results = [None] * len(requests)

    def client(i):
        results[i] = ask(srv, [requests[i]])[0]

    threads = [threading.Thread(target=client, args=(i,)) for i in range(len(requests))]
    with srv.admission.hold():
        for t in threads:
            t.start()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with srv.admission._cond:
                parked = sum(
                    len(g.pendings) for g in srv.admission._groups.values()
                )
            if parked == len(requests):
                break
            time.sleep(0.005)
        else:
            pytest.fail(f"only {parked}/{len(requests)} requests parked")
    for t in threads:
        t.join(timeout)
    return results


# ----------------------------------------------------------------------
# protocol validation
# ----------------------------------------------------------------------


class TestProtocol:
    def test_run_request_parses(self):
        doc = parse_request(b'{"op": "run", "graph": "g", "algorithm": "bfs", "source": 3, "id": 7}')
        req = doc["request"]
        assert (req.graph, req.algorithm, req.source, req.id) == ("g", "bfs", 3, 7)

    def test_batch_key_ignores_source_but_not_params(self):
        a = parse_request('{"op": "run", "graph": "g", "algorithm": "bfs", "source": 1}')["request"]
        b = parse_request('{"op": "run", "graph": "g", "algorithm": "bfs", "source": 2}')["request"]
        assert a.batch_key == b.batch_key
        c = parse_request(
            '{"op": "run", "graph": "g", "algorithm": "pagerank", "params": {"damping": 0.9}}'
        )["request"]
        d = parse_request(
            '{"op": "run", "graph": "g", "algorithm": "pagerank", "params": {"damping": 0.85}}'
        )["request"]
        assert c.batch_key != d.batch_key

    @pytest.mark.parametrize(
        "line, code",
        [
            (b"\xff\xfe garbage", "bad-json"),
            (b"not json at all", "bad-json"),
            (b"[1, 2, 3]", "bad-request"),
            (b'{"no_op": 1}', "bad-request"),
            (b'{"op": "explode"}', "unknown-op"),
            (b'{"op": "run", "algorithm": "bfs", "source": 0}', "bad-request"),
            (b'{"op": "run", "graph": "g", "algorithm": "dijkstra"}', "unknown-algorithm"),
            (b'{"op": "run", "graph": "g", "algorithm": "bfs"}', "bad-source"),
            (b'{"op": "run", "graph": "g", "algorithm": "bfs", "source": true}', "bad-source"),
            (b'{"op": "run", "graph": "g", "algorithm": "pagerank", "source": 0}', "bad-source"),
            (b'{"op": "run", "graph": "g", "algorithm": "pagerank", "params": {"beta": 1}}', "bad-params"),
            (b'{"op": "run", "graph": "g", "algorithm": "bfs", "source": 0, "id": {}}', "bad-request"),
        ],
    )
    def test_error_codes(self, line, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(line)
        assert err.value.code == code


# ----------------------------------------------------------------------
# multi-source fusion exactness
# ----------------------------------------------------------------------


class TestMultiSource:
    @pytest.mark.parametrize("sources", [[0], [5, 17, 0, 33]])
    def test_bfs_rows_bit_identical_to_solo(self, graph, sources):
        fused = bfs_levels_multi(graph, sources)
        for row, src in enumerate(sources):
            solo_idx, solo_vals = bfs_levels(graph, src).to_coo()
            idx, vals = matrix_row(fused, row)
            np.testing.assert_array_equal(idx, solo_idx)
            np.testing.assert_array_equal(vals, solo_vals)

    @pytest.mark.parametrize("sources", [[2], [11, 2, 40]])
    def test_sssp_rows_bit_identical_to_solo(self, graph, sources):
        fused = sssp_distances_multi(graph, sources)
        for row, src in enumerate(sources):
            solo_idx, solo_vals = sssp_distances(graph, src).to_coo()
            idx, vals = matrix_row(fused, row)
            np.testing.assert_array_equal(idx, solo_idx)
            # bit-identity, not approximate equality: fusion performs the
            # same float ops in the same order
            np.testing.assert_array_equal(vals, solo_vals)

    def test_source_validation(self, graph):
        with pytest.raises(InvalidValue):
            bfs_levels_multi(graph, [])
        with pytest.raises(InvalidValue):
            bfs_levels_multi(graph, [graph.nrows])


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_manifest_generators(self, tmp_path):
        manifest = tmp_path / "graphs.json"
        manifest.write_text(json.dumps({
            "graphs": {
                "er": {"generator": "erdos_renyi", "nodes": 32, "nedges": 64, "seed": 1},
                "ring": {"generator": "ring_graph", "nodes": 16},
            }
        }))
        registry = load_manifest(manifest)
        assert registry.names() == ["er", "ring"]
        assert registry.get("ring").nrows == 16
        # prewarm materialised the shared memos
        assert registry.get("er")._store._transpose_cache is not None

    def test_manifest_rejects_unknown_generator(self, tmp_path):
        manifest = tmp_path / "bad.json"
        manifest.write_text('{"g": {"generator": "petersen"}}')
        with pytest.raises(InvalidValue):
            load_manifest(manifest)

    def test_manifest_rejects_bad_json(self, tmp_path):
        manifest = tmp_path / "bad.json"
        manifest.write_text("{nope")
        with pytest.raises(InvalidValue):
            load_manifest(manifest)


# ----------------------------------------------------------------------
# the server: happy paths
# ----------------------------------------------------------------------


class TestServer:
    def test_health_and_graphs_endpoints(self, server):
        health, graphs = ask(server, [{"op": "health"}, {"op": "graphs", "id": "g"}])
        assert health["ok"] and health["result"]["status"] == "ok"
        assert health["result"]["graphs"] == ["er"]
        assert "bfs" in health["result"]["algorithms"]
        assert graphs["id"] == "g"
        assert graphs["result"]["graphs"]["er"]["nrows"] == 96

    def test_single_request_matches_solo_reference(self, server, graph):
        resp = ask(server, [{"op": "run", "graph": "er", "algorithm": "bfs", "source": 4}])[0]
        assert resp["ok"]
        oracle = solo_reference(graph, "er", "bfs", 4, {})
        assert json.dumps(resp["result"], sort_keys=True) == json.dumps(oracle, sort_keys=True)

    def test_pipelined_requests_answer_in_order(self, server):
        reqs = [
            {"op": "run", "graph": "er", "algorithm": "bfs", "source": s, "id": s}
            for s in (1, 2, 3)
        ]
        for resp, req in zip(ask(server, reqs), reqs):
            assert resp["ok"] and resp["id"] == req["id"]
            assert resp["result"]["source"] == req["source"]

    def test_batched_volley_bit_identical_and_counted(self, server, graph):
        reqs = (
            [{"op": "run", "graph": "er", "algorithm": "bfs", "source": s} for s in (0, 7, 21, 40)]
            + [{"op": "run", "graph": "er", "algorithm": "sssp", "source": s} for s in (3, 14)]
            + [{"op": "run", "graph": "er", "algorithm": "triangles"} for _ in range(2)]
        )
        responses = parked_volley(server, reqs)
        assert all(r["ok"] for r in responses)
        for req, resp in zip(reqs, responses):
            oracle = solo_reference(graph, "er", req["algorithm"], req.get("source"), {})
            assert json.dumps(resp["result"], sort_keys=True) == json.dumps(oracle, sort_keys=True)
        counters = service.stats()
        assert counters["requests"] == 8
        assert counters["batches"] == 3
        assert counters["batched_requests"] == 8
        assert counters["fused_runs"] == 2  # bfs x4 + sssp x2; triangles dedups
        assert counters["fused_sources"] == 6
        assert counters["batch_hist"] == {"1": 0, "2_4": 3, "5_8": 0, "9_plus": 0}

    def test_stats_endpoint_reflects_counters(self, server):
        ask(server, [{"op": "run", "graph": "er", "algorithm": "bfs", "source": 0}])
        counters = ask(server, [{"op": "stats"}])[0]["result"]
        assert counters["requests"] == 1
        assert counters["batches"] == 1
        assert counters["batch_hist"]["1"] == 1


# ----------------------------------------------------------------------
# the server: failure paths
# ----------------------------------------------------------------------


class TestServerFailures:
    def test_malformed_json_gets_structured_error(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is { not json\n")
            f.flush()
            resp = json.loads(f.readline())
            assert not resp["ok"] and resp["error"]["code"] == "bad-json"
            # the connection survives a bad line
            f.write(b'{"op": "health"}\n')
            f.flush()
            assert json.loads(f.readline())["ok"]

    def test_unknown_graph(self, server):
        resp = ask(server, [{"op": "run", "graph": "nope", "algorithm": "bfs", "source": 0}])[0]
        assert not resp["ok"] and resp["error"]["code"] == "unknown-graph"
        assert "er" in resp["error"]["message"]

    def test_unknown_algorithm(self, server):
        resp = ask(server, [{"op": "run", "graph": "er", "algorithm": "dijkstra", "source": 0}])[0]
        assert not resp["ok"] and resp["error"]["code"] == "unknown-algorithm"

    def test_source_out_of_range(self, server):
        resp = ask(server, [{"op": "run", "graph": "er", "algorithm": "bfs", "source": 9000}])[0]
        assert not resp["ok"] and resp["error"]["code"] == "bad-source"

    def test_error_response_echoes_request_id(self, server):
        resp = ask(server, [{"op": "run", "graph": "nope", "algorithm": "bfs",
                             "source": 0, "id": "tag-1"}])[0]
        assert not resp["ok"] and resp["id"] == "tag-1"

    def test_oversized_line_rejected_then_closed(self, server, monkeypatch):
        monkeypatch.setenv("PYGB_SERVICE_MAX_LINE", "256")
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b'{"op": "run", "graph": "' + b"x" * 1024 + b'"}\n')
            f = sock.makefile("rb")
            resp = json.loads(f.readline())
            assert not resp["ok"] and resp["error"]["code"] == "line-too-long"
            assert f.readline() == b""  # unframed input drops the connection

    def test_client_disconnect_mid_request_is_absorbed(self, server):
        with server.admission.hold():
            sock = socket.create_connection((server.host, server.port), timeout=10)
            sock.sendall(b'{"op": "run", "graph": "er", "algorithm": "bfs", "source": 0}\n')
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with server.admission._cond:
                    if any(g.pendings for g in server.admission._groups.values()):
                        break
                time.sleep(0.005)
            else:
                pytest.fail("request never reached the admission queue")
            sock.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            counters = service.stats()
            if counters["disconnects"] >= 1:
                break
            time.sleep(0.01)
        assert counters["disconnects"] == 1
        # the batch itself completed: no error, no timeout
        assert counters["errors"] == 0 and counters["timeouts"] == 0
        assert counters["batches"] == 1
        # and the server is still fully alive
        assert ask(server, [{"op": "health"}])[0]["ok"]

    def test_deadline_expiry_is_a_structured_timeout(self, server, monkeypatch):
        monkeypatch.setenv("PYGB_REQUEST_TIMEOUT", "0.000000001")
        with socket.create_connection((server.host, server.port), timeout=15) as sock:
            f = sock.makefile("rwb")
            f.write(b'{"op": "run", "graph": "er", "algorithm": "bfs", "source": 0, "id": 9}\n')
            f.flush()
            resp = json.loads(f.readline())
            # a blown budget is an answer, not a dropped connection
            assert not resp["ok"]
            assert resp["error"]["code"] == "timeout"
            assert resp["id"] == 9
            monkeypatch.delenv("PYGB_REQUEST_TIMEOUT")
            f.write(b'{"op": "run", "graph": "er", "algorithm": "bfs", "source": 0}\n')
            f.flush()
            assert json.loads(f.readline())["ok"]
        assert service.stats()["timeouts"] == 1

    def test_close_fails_parked_requests_with_shutting_down(self, graph):
        registry = GraphRegistry()
        registry.add("er", graph, prewarm=False)
        srv = GraphServer(registry).start()
        responses = []
        hold = srv.admission.hold()
        hold.__enter__()
        t = threading.Thread(
            target=lambda: responses.append(
                ask(srv, [{"op": "run", "graph": "er", "algorithm": "bfs", "source": 0}])[0]
            )
        )
        t.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            with srv.admission._cond:
                if any(g.pendings for g in srv.admission._groups.values()):
                    break
            time.sleep(0.005)
        srv.close()
        hold.__exit__(None, None, None)
        t.join(10)
        assert responses and not responses[0]["ok"]
        assert responses[0]["error"]["code"] == "shutting-down"


# ----------------------------------------------------------------------
# backend memo reentrancy (two server threads, one preloaded graph)
# ----------------------------------------------------------------------


def _race(worker, threads=8):
    barrier = threading.Barrier(threads)
    results = [None] * threads
    errors = []

    def run(i):
        try:
            barrier.wait()
            results[i] = worker()
        except BaseException as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    ts = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join(30)
    assert not errors, errors
    return results


class TestBackendMemoReentrancy:
    def test_matrix_transpose_builds_once_under_race(self, rng):
        rows = rng.integers(0, 200, size=2000)
        cols = rng.integers(0, 200, size=2000)
        m = SparseMatrix.from_coo(200, 200, rows, cols, rng.random(2000))
        results = _race(m.transposed)
        assert all(r is results[0] for r in results)
        assert results[0]._transpose_cache is m

    def test_matrix_degree_memos_build_once_under_race(self, rng):
        rows = rng.integers(0, 200, size=2000)
        cols = rng.integers(0, 200, size=2000)
        m = SparseMatrix.from_coo(200, 200, rows, cols, rng.random(2000))
        lengths = _race(m.row_lengths)
        assert all(r is lengths[0] for r in lengths)
        stats = _race(m.degree_stats)
        assert all(s == stats[0] for s in stats)

    def test_vector_frontier_reprs_build_once_under_race(self, rng):
        idx = np.unique(rng.integers(0, 5000, size=800))
        v = SparseVector.from_sorted(5000, idx, rng.random(idx.size) > 0.3)
        for method in (v.dense_lookup, v.bool_indices, v.true_bitmap):
            results = _race(method)
            first = results[0]
            assert all(
                (r is first)
                or (isinstance(first, tuple) and all(a is b for a, b in zip(r, first)))
                for r in results
            )
