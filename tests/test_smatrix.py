"""Unit tests for the backend CSR sparse matrix container."""

import numpy as np
import pytest

from repro.backend.smatrix import SparseMatrix
from repro.exceptions import DimensionMismatch, IndexOutOfBounds


def mk(nrows, ncols, triples, dtype=np.float64):
    rows = [t[0] for t in triples]
    cols = [t[1] for t in triples]
    vals = [t[2] for t in triples]
    return SparseMatrix.from_coo(nrows, ncols, rows, cols, vals, dtype)


class TestConstruction:
    def test_empty(self):
        m = SparseMatrix.empty(3, 4, np.int64)
        assert m.shape == (3, 4) and m.nvals == 0
        assert list(m.indptr) == [0, 0, 0, 0]

    def test_from_coo_sorted_layout(self):
        m = mk(3, 3, [(2, 0, 1.0), (0, 2, 2.0), (0, 1, 3.0)])
        rows, cols, vals = m.coo()
        assert list(rows) == [0, 0, 2]
        assert list(cols) == [1, 2, 0]
        assert list(vals) == [3.0, 2.0, 1.0]

    def test_duplicates_last_wins_default(self):
        m = mk(2, 2, [(0, 0, 1.0), (0, 0, 5.0)])
        assert m.nvals == 1 and m.get(0, 0) == 5.0

    def test_duplicates_with_plus(self):
        m = SparseMatrix.from_coo(2, 2, [0, 0], [0, 0], [1.0, 5.0], dup_op="Plus")
        assert m.get(0, 0) == 6.0

    def test_from_dense_stores_all(self):
        m = SparseMatrix.from_dense([[1, 0], [0, 4]])
        assert m.nvals == 4  # zeros are stored entries for dense input

    def test_bounds_checked(self):
        with pytest.raises(IndexOutOfBounds):
            mk(2, 2, [(2, 0, 1.0)])
        with pytest.raises(IndexOutOfBounds):
            mk(2, 2, [(0, 2, 1.0)])

    def test_ragged_coo_rejected(self):
        with pytest.raises(DimensionMismatch):
            SparseMatrix.from_coo(2, 2, [0, 1], [0], [1.0, 2.0])

    def test_from_dense_rejects_1d(self):
        with pytest.raises(DimensionMismatch):
            SparseMatrix.from_dense(np.zeros(3))


class TestAccess:
    def test_get(self):
        m = mk(3, 3, [(1, 2, 9.0)])
        assert m.get(1, 2) == 9.0
        assert m.get(1, 1) is None
        assert m.get(0, 0, default=0.0) == 0.0
        with pytest.raises(IndexOutOfBounds):
            m.get(3, 0)

    def test_row_lengths(self):
        m = mk(3, 3, [(0, 0, 1.0), (0, 1, 1.0), (2, 2, 1.0)])
        assert list(m.row_lengths()) == [2, 0, 1]

    def test_row_vector(self):
        m = mk(3, 4, [(1, 0, 5.0), (1, 3, 6.0)])
        rv = m.row_vector(1)
        assert rv.size == 4
        assert rv.to_dict() == {0: 5.0, 3: 6.0}
        assert m.row_vector(0).nvals == 0
        with pytest.raises(IndexOutOfBounds):
            m.row_vector(3)

    def test_to_dense(self):
        m = mk(2, 2, [(0, 1, 3.0)])
        d = m.to_dense()
        assert d[0, 1] == 3.0 and d[1, 0] == 0

    def test_to_dict(self):
        m = mk(2, 2, [(0, 1, 3.0), (1, 0, 4.0)])
        assert m.to_dict() == {(0, 1): 3.0, (1, 0): 4.0}


class TestTranspose:
    def test_transpose_values(self):
        m = mk(2, 3, [(0, 2, 1.0), (1, 0, 2.0)])
        t = m.transposed()
        assert t.shape == (3, 2)
        assert t.get(2, 0) == 1.0 and t.get(0, 1) == 2.0

    def test_transpose_is_cached(self):
        m = mk(2, 3, [(0, 2, 1.0)])
        assert m.transposed() is m.transposed()

    def test_transpose_roundtrip_shares_cache(self):
        m = mk(2, 3, [(0, 2, 1.0)])
        assert m.transposed().transposed() is m

    def test_transpose_of_empty(self):
        m = SparseMatrix.empty(2, 5, np.float64)
        t = m.transposed()
        assert t.shape == (5, 2) and t.nvals == 0


class TestTransforms:
    def test_astype(self):
        m = mk(2, 2, [(0, 0, 2.9)])
        t = m.astype(np.int32)
        assert t.dtype == np.int32 and t.get(0, 0) == 2

    def test_copy_independent(self):
        m = mk(2, 2, [(0, 0, 1.0)])
        c = m.copy()
        c.values[0] = 7.0
        assert m.get(0, 0) == 1.0
