"""Unit tests for the backend sparse vector container."""

import numpy as np
import pytest

from repro.backend.svector import SparseVector
from repro.exceptions import DimensionMismatch, IndexOutOfBounds


class TestConstruction:
    def test_empty(self):
        v = SparseVector.empty(5, np.float64)
        assert v.size == 5 and v.nvals == 0 and v.dtype == np.float64

    def test_from_coo_sorts(self):
        v = SparseVector.from_coo(10, [5, 1, 3], [50.0, 10.0, 30.0])
        assert list(v.indices) == [1, 3, 5]
        assert list(v.values) == [10.0, 30.0, 50.0]

    def test_from_coo_scalar_broadcast(self):
        v = SparseVector.from_coo(10, [1, 2, 3], 7, dtype=np.int64)
        assert list(v.values) == [7, 7, 7]

    def test_duplicates_last_wins_by_default(self):
        # GBTL build semantics: dup combines with Second
        v = SparseVector.from_coo(10, [2, 2, 2], [1.0, 2.0, 3.0])
        assert v.nvals == 1 and v.get(2) == 3.0

    def test_duplicates_with_plus(self):
        v = SparseVector.from_coo(10, [2, 5, 2], [1.0, 9.0, 3.0], dup_op="Plus")
        assert v.get(2) == 4.0 and v.get(5) == 9.0

    def test_duplicates_first(self):
        v = SparseVector.from_coo(10, [2, 2], [1.0, 3.0], dup_op="First")
        assert v.get(2) == 1.0

    def test_from_dense_stores_zeros(self):
        # dense construction stores every element, including zeros
        v = SparseVector.from_dense([0.0, 1.0, 0.0])
        assert v.nvals == 3

    def test_index_out_of_bounds(self):
        with pytest.raises(IndexOutOfBounds):
            SparseVector.from_coo(3, [3], [1.0])
        with pytest.raises(IndexOutOfBounds):
            SparseVector.from_coo(3, [-1], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(DimensionMismatch):
            SparseVector.from_coo(5, [0, 1], [1.0])

    def test_from_dense_rejects_2d(self):
        with pytest.raises(DimensionMismatch):
            SparseVector.from_dense(np.zeros((2, 2)))


class TestAccess:
    def test_get_present_and_absent(self):
        v = SparseVector.from_coo(5, [1, 3], [1.5, 3.5])
        assert v.get(1) == 1.5
        assert v.get(2) is None
        assert v.get(2, default=0.0) == 0.0

    def test_get_bounds(self):
        v = SparseVector.empty(5, float)
        with pytest.raises(IndexOutOfBounds):
            v.get(5)

    def test_to_dense_fill(self):
        v = SparseVector.from_coo(4, [1], [2.0])
        assert list(v.to_dense(fill=-1)) == [-1, 2.0, -1, -1]

    def test_dense_lookup(self):
        v = SparseVector.from_coo(4, [0, 2], [5.0, 7.0])
        vals, present = v.dense_lookup()
        assert list(present) == [True, False, True, False]
        assert vals[0] == 5.0 and vals[2] == 7.0

    def test_bool_indices_drops_falsy(self):
        v = SparseVector.from_coo(5, [0, 1, 2], [1.0, 0.0, 2.0])
        assert list(v.bool_indices()) == [0, 2]

    def test_to_dict(self):
        v = SparseVector.from_coo(5, [4, 0], [4.0, 0.5])
        assert v.to_dict() == {0: 0.5, 4: 4.0}


class TestTransforms:
    def test_astype_casts(self):
        v = SparseVector.from_coo(3, [0], [2.7])
        w = v.astype(np.int64)
        assert w.dtype == np.int64 and w.get(0) == 2

    def test_astype_same_dtype_is_identity(self):
        v = SparseVector.from_coo(3, [0], [2.7])
        assert v.astype(np.float64) is v

    def test_copy_is_independent(self):
        v = SparseVector.from_coo(3, [0], [1.0])
        w = v.copy()
        w.values[0] = 9.0
        assert v.get(0) == 1.0
