"""Table I conformance: every operation row of the paper's Table I,
written in the exact PyGB notation of column 3, checked against the
C API mathematical semantics of column 2.

Each test names the Table I row it covers.
"""

import numpy as np
import pytest

import repro as gb


@pytest.fixture
def data(engine):
    A = gb.Matrix([[1.0, 2.0], [3.0, 4.0]])
    B = gb.Matrix([[5.0, 6.0], [7.0, 8.0]])
    u = gb.Vector([1.0, 2.0])
    v = gb.Vector([10.0, 20.0])
    M = gb.Matrix(([True, True], ([0, 1], [0, 1])), shape=(2, 2), dtype=bool)
    m = gb.Vector(([True], [0]), shape=(2,), dtype=bool)
    return A, B, u, v, M, m


class TestMxM:
    def test_mxm_plain(self, data):
        # C[M, z] = A @ B
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(2, 2), dtype=float)
        C[None] = A @ B
        assert np.allclose(C.to_numpy(), A.to_numpy() @ B.to_numpy())

    def test_mxm_masked_with_replace_flag(self, data):
        A, B, u, v, M, m = data
        C = gb.Matrix([[100.0, 100.0], [100.0, 100.0]])
        C[M, True] = A @ B
        # mask selects the diagonal; replace clears the rest
        assert C.nvals == 2
        assert C[0, 0] == 19.0 and C[1, 1] == 50.0


class TestMxV:
    def test_mxv(self, data):
        # w[m, z] = A @ u
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(2,), dtype=float)
        w[None] = A @ u
        assert list(w.to_numpy()) == [5.0, 11.0]

    def test_mxv_masked(self, data):
        A, B, u, v, M, m = data
        w = gb.Vector([100.0, 200.0])
        w[m] = A @ u
        assert w[0] == 5.0 and w[1] == 200.0  # merge keeps outside


class TestEWiseMult:
    def test_matrix(self, data):
        # C[M, z] = A * B
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(2, 2), dtype=float)
        C[None] = A * B
        assert np.allclose(C.to_numpy(), A.to_numpy() * B.to_numpy())

    def test_vector(self, data):
        # w[m, z] = u * v
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(2,), dtype=float)
        w[None] = u * v
        assert list(w.to_numpy()) == [10.0, 40.0]


class TestEWiseAdd:
    def test_matrix(self, data):
        # C[M, z] = A + B
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(2, 2), dtype=float)
        C[None] = A + B
        assert np.allclose(C.to_numpy(), A.to_numpy() + B.to_numpy())

    def test_vector(self, data):
        # w[m, z] = u + v
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(2,), dtype=float)
        w[None] = u + v
        assert list(w.to_numpy()) == [11.0, 22.0]


class TestReduce:
    def test_reduce_rows_to_vector(self, data):
        # w[m, z] = reduce(monoid, A)
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(2,), dtype=float)
        w[None] = gb.reduce(gb.PlusMonoid, A)
        assert list(w.to_numpy()) == [3.0, 7.0]

    def test_reduce_matrix_to_scalar(self, data):
        # s = reduce(A)
        A, B, u, v, M, m = data
        assert gb.reduce(A) == 10.0

    def test_reduce_vector_to_scalar(self, data):
        # s = reduce(u)
        A, B, u, v, M, m = data
        assert gb.reduce(u) == 3.0

    def test_reduce_with_context_monoid(self, data):
        A, B, u, v, M, m = data
        with gb.MinMonoid:
            assert gb.reduce(A) == 1.0


class TestApply:
    def test_apply_matrix(self, data):
        # C[M, z] = apply(A)
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(2, 2), dtype=float)
        with gb.UnaryOp("AdditiveInverse"):
            C[None] = gb.apply(A)
        assert np.allclose(C.to_numpy(), -A.to_numpy())

    def test_apply_vector(self, data):
        # w[m, z] = apply(u)
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(2,), dtype=float)
        with gb.UnaryOp("MultiplicativeInverse"):
            w[None] = gb.apply(u)
        assert list(w.to_numpy()) == [1.0, 0.5]


class TestTranspose:
    def test_transpose_row(self, data):
        # C[M, z] = A.T
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(2, 2), dtype=float)
        C[None] = A.T
        assert np.allclose(C.to_numpy(), A.to_numpy().T)


class TestExtract:
    def test_extract_submatrix(self, data):
        # C[M, z] = A[i, j]
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(1, 2), dtype=float)
        C[None] = A[[1], [0, 1]]
        assert list(C.to_numpy()[0]) == [3.0, 4.0]

    def test_extract_subvector(self, data):
        # w[m, z] = u[i]
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(2,), dtype=float)
        w[None] = u[[1, 0]]
        assert list(w.to_numpy()) == [2.0, 1.0]

    def test_extract_matrix_row_as_vector(self, data):
        A, B, u, v, M, m = data
        w = gb.Vector(A[0, :])
        assert list(w.to_numpy()) == [1.0, 2.0]

    def test_extract_matrix_column_as_vector(self, data):
        A, B, u, v, M, m = data
        w = gb.Vector(A[:, 1])
        assert list(w.to_numpy()) == [2.0, 4.0]

    def test_extract_with_slices(self, data):
        A, B, u, v, M, m = data
        C = gb.Matrix(A[0:2, 0:1])
        assert C.shape == (2, 1)
        assert C[1, 0] == 3.0


class TestAssign:
    def test_assign_submatrix(self, data):
        # C[M, z][i, j] = A
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(4, 4), dtype=float)
        C[0:2, 2:4] = A
        assert C.nvals == 4
        assert C[1, 3] == 4.0

    def test_assign_subvector(self, data):
        # w[m, z][i] = u
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(5,), dtype=float)
        w[[3, 4]] = u
        assert w.get(3) == 1.0 and w.get(4) == 2.0

    def test_masked_assign_through_view(self, data):
        # w[m][i] = u  (Table I row: w⟨m⟩(i) = u)
        A, B, u, v, M, m = data
        w = gb.Vector([100.0, 200.0])
        w[m][[0, 1]] = u
        assert w[0] == 1.0    # in mask: new value
        assert w[1] == 200.0  # outside mask: old value kept

    def test_assign_constant_to_slice(self, data):
        # page_rank[:] = 1.0 / rows (Fig. 7 line 13)
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(4,), dtype=float)
        w[:] = 0.25
        assert w.nvals == 4 and set(w.to_numpy()) == {0.25}

    def test_assign_vector_to_slice(self, data):
        # page_rank[:] = new_rank (Fig. 7 line 33)
        A, B, u, v, M, m = data
        w = gb.Vector(shape=(2,), dtype=float)
        w[:] = u
        assert w.isequal(u)

    def test_masked_constant_assign(self, data):
        # levels[front][:] = depth (Fig. 2b line 5)
        A, B, u, v, M, m = data
        levels = gb.Vector(shape=(2,), dtype=int)
        levels[m][:] = 7
        assert levels.to_numpy().tolist() == [7, 0]
        assert levels.nvals == 1

    def test_assign_matrix_expression_forces_temp(self, data):
        # C[2:4, 2:4] = A @ B (Sec. IV: forced intermediate copy)
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(4, 4), dtype=float)
        C[2:4, 2:4] = A @ B
        assert C[2, 2] == 19.0 and C[3, 3] == 50.0

    def test_assign_row_and_column(self, data):
        A, B, u, v, M, m = data
        C = gb.Matrix(shape=(3, 2), dtype=float)
        C[1, :] = u
        assert C[1, 0] == 1.0 and C[1, 1] == 2.0
        D = gb.Matrix(shape=(2, 3), dtype=float)
        D[:, 2] = u
        assert D[0, 2] == 1.0 and D[1, 2] == 2.0


class TestMaskVariants:
    def test_complemented_mask(self, data):
        # frontier[~levels] = ... (Fig. 2b line 7)
        A, B, u, v, M, m = data
        w = gb.Vector([1.0, 2.0])
        w[~m] = gb.apply(v)
        assert w[0] == 1.0   # in mask complement... index 0 masked out
        assert w[1] == 20.0  # complement includes index 1

    def test_value_mask_coerces_to_bool(self, data):
        # "its data will be coerced to boolean values" (Sec. III)
        A, B, u, v, M, m = data
        num_mask = gb.Vector(([0.0, 3.5], [0, 1]), shape=(2,))
        w = gb.Vector([1.0, 2.0])
        w[num_mask] = gb.apply(v)
        assert w[0] == 1.0   # 0.0 is false
        assert w[1] == 20.0  # 3.5 is true

    def test_none_is_nomask(self, data):
        A, B, u, v, M, m = data
        w = gb.Vector([1.0, 2.0])
        w[None] = gb.apply(v)
        assert list(w.to_numpy()) == [10.0, 20.0]

    def test_double_complement_restores(self, data):
        A, B, u, v, M, m = data
        assert (~~m) is m
