"""The tiled data plane: blocked CSR storage + the partitioned executor.

The correctness statement under test is bit-identity: any program run
with ``PYGB_TILES > 1`` (row-partitioned dispatch fanned over worker
threads) must produce byte-for-byte the same containers as the
monolithic path, on every engine, in blocking and nonblocking mode.
Merge semantics get targeted coverage — row-disjoint concatenation for
the fan-out families, exact monoid folds for scalar reductions (and the
forwarding of floating Plus/Times, whose fold would reassociate), and
hazard-ordered monolithic execution for assigns.  The deterministic
tiling counters, the ``PYGB_TILES=1`` ablation, the planner's
``tile_safe`` fusion gate, and the storage-level splitting algebra are
covered alongside.
"""

import contextlib

import numpy as np
import pytest

import repro as gb
from repro import tiling
from repro.backend.smatrix import SparseMatrix
from repro.backend.svector import SparseVector
from repro.backend.tiled import (
    TiledMatrix,
    concat_mat_parts,
    concat_vec_parts,
    nnz_balanced_splits,
    row_block,
    slice_vec_rows,
)
from repro.jit.fused_ops import FUSED_OPS
from repro.jit.fusion import Fused, fuse_expression

N = 48  # large enough that 4 row tiles are all non-trivial


# ----------------------------------------------------------------------
# deterministic operand builders (containers are built *inside* the
# tiling configuration under test, so the constructor adopts tiled
# storage when the configuration asks for it)
# ----------------------------------------------------------------------


def _mat(seed, n=N, density=0.15, dtype=np.int64):
    rng = np.random.default_rng(seed)
    keep = rng.random((n, n)) < density
    r, c = np.nonzero(keep)
    if np.dtype(dtype).kind == "f":
        vals = rng.uniform(-4.0, 4.0, r.size)
    else:
        vals = rng.integers(-8, 8, r.size)
    return gb.Matrix((vals, (r, c)), shape=(n, n), dtype=dtype)


def _vec(seed, n=N, density=0.4, dtype=np.int64):
    rng = np.random.default_rng(seed)
    idx = np.flatnonzero(rng.random(n) < density)
    if np.dtype(dtype).kind == "f":
        vals = rng.uniform(-4.0, 4.0, idx.size)
    else:
        vals = rng.integers(-8, 8, idx.size)
    return gb.Vector((vals, idx), shape=(n,), dtype=dtype)


def _vmask(seed, n=N):
    rng = np.random.default_rng(seed)
    idx = np.flatnonzero(rng.random(n) < 0.5)
    return gb.Vector((np.ones(idx.size, dtype=bool), idx), shape=(n,), dtype=bool)


def _mmask(seed, n=N):
    rng = np.random.default_rng(seed)
    keep = rng.random((n, n)) < 0.3
    r, c = np.nonzero(keep)
    return gb.Matrix((np.ones(r.size, dtype=bool), (r, c)), shape=(n, n), dtype=bool)


# ----------------------------------------------------------------------
# the program zoo: each entry builds fresh operands, runs one kernel
# family end to end, and returns plain dicts (fully materialised)
# ----------------------------------------------------------------------


def _prog_mxv():
    a, u = _mat(1), _vec(2)
    w = gb.Vector(shape=(N,), dtype=np.int64)
    with gb.MinPlusSemiring:
        w[None] = a @ u
    return w._store.to_dict()


def _prog_mxv_masked_accum():
    a, u, m = _mat(3), _vec(4), _vmask(5)
    w = _vec(6)
    with gb.ArithmeticSemiring, gb.Accumulator("Plus"):
        w[m] = a @ u
    return w._store.to_dict()


def _prog_vxm_transpose():
    a, u = _mat(7), _vec(8)
    w = gb.Vector(shape=(N,), dtype=np.int64)
    y = gb.Vector(shape=(N,), dtype=np.int64)
    with gb.ArithmeticSemiring:
        w[None] = u @ a
        y[None] = gb.transpose(a) @ u
    return w._store.to_dict(), y._store.to_dict()


def _prog_mxm():
    a, b = _mat(9), _mat(10)
    c = gb.Matrix(shape=(N, N), dtype=np.int64)
    with gb.ArithmeticSemiring:
        c[None] = a @ b
    return c._store.to_dict()


def _prog_mxm_masked():
    a, b, m = _mat(11), _mat(12), _mmask(13)
    c = gb.Matrix(shape=(N, N), dtype=np.int64)
    with gb.MinPlusSemiring, gb.Replace:
        c[~m] = a @ b
    return c._store.to_dict()


def _prog_ewise_mat():
    a, b = _mat(14), _mat(15)
    c = gb.Matrix(shape=(N, N), dtype=np.int64)
    d = gb.Matrix(shape=(N, N), dtype=np.int64)
    with gb.BinaryOp("Min"):
        c[None] = a + b
    with gb.BinaryOp("Times"):
        d[None] = a * b
    return c._store.to_dict(), d._store.to_dict()


def _prog_apply_select():
    a = _mat(16)
    b = gb.Matrix(gb.apply(gb.UnaryOp("Plus", 3), a))
    tril = gb.Matrix(gb.select("Tril", a, -1))
    triu = gb.Matrix(gb.select("Triu", a, 1))
    big = gb.Matrix(gb.select("ValueGT", a, 0))
    return tuple(x._store.to_dict() for x in (b, tril, triu, big))


def _prog_reduce_rows():
    a = _mat(17)
    w = gb.Vector(shape=(N,), dtype=np.int64)
    w[None] = gb.reduce(gb.PlusMonoid, a)
    return w._store.to_dict()


def _prog_reduce_scalar():
    a = _mat(18)
    f = _mat(19, dtype=np.float64)
    with gb.MinMonoid:
        fmin = gb.reduce(f)                 # float Min: exact, partitioned
    return (
        gb.reduce(a),                       # int Plus: partitioned exact fold
        fmin,
        gb.reduce(f),                       # float Plus: forwarded monolithic
    )


def _prog_assign():
    m = _mmask(20)
    c = _mat(21)
    with gb.Accumulator("Plus"):
        c[m] = 5
    d = _mat(22)
    d[1:N:2, :] = gb.Matrix(_mat(23)[0 : N // 2, :])
    return c._store.to_dict(), d._store.to_dict()


def _prog_transpose_kron_extract():
    a = _mat(24)
    t = gb.Matrix(a.T)
    small = gb.Matrix(_mat(25, n=6, density=0.4)[0:6, 0:6])
    k = gb.Matrix(gb.kron(small, small))
    e = gb.Matrix(a[4:40, 2:30])
    return t._store.to_dict(), k._store.to_dict(), e._store.to_dict()


def _prog_bfs():
    a = _mat(26, density=0.12)
    pattern = gb.Matrix(gb.apply(gb.UnaryOp("GreaterThan", -100), a))
    frontier = gb.Vector(([True], [0]), shape=(N,), dtype=bool)
    levels = gb.Vector(shape=(N,), dtype=int)
    depth = 0
    while frontier.nvals > 0 and depth < N:
        depth += 1
        levels[frontier][:] = depth
        with gb.LogicalSemiring, gb.Replace:
            frontier[~levels] = pattern.T @ frontier
    return levels._store.to_dict()


PROGRAMS = {
    "mxv": _prog_mxv,
    "mxv_masked_accum": _prog_mxv_masked_accum,
    "vxm_transpose": _prog_vxm_transpose,
    "mxm": _prog_mxm,
    "mxm_masked": _prog_mxm_masked,
    "ewise_mat": _prog_ewise_mat,
    "apply_select": _prog_apply_select,
    "reduce_rows": _prog_reduce_rows,
    "reduce_scalar": _prog_reduce_scalar,
    "assign": _prog_assign,
    "transpose_kron_extract": _prog_transpose_kron_extract,
    "bfs": _prog_bfs,
}


def _run(prog, cfg=None, nonblocking=False):
    """Run one program under a tiling configuration (a kwargs dict for
    ``gb.tiled``, or None for the ambient default) and execution mode."""
    tctx = gb.tiled(**cfg) if cfg is not None else contextlib.nullcontext()
    nctx = gb.nonblocking() if nonblocking else contextlib.nullcontext()
    with tctx, nctx:
        return prog()


# ----------------------------------------------------------------------
# differential: tiled vs monolithic, per kernel family x engine x mode
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_tiled_matches_monolithic(engine, name):
    prog = PROGRAMS[name]
    mono = _run(prog, {"tiles": 1})
    tiled4 = _run(prog, {"tiles": 4, "workers": 2})
    assert mono == tiled4


@pytest.mark.parametrize("name", ["mxv_masked_accum", "mxm", "assign", "bfs"])
def test_tiled_matches_monolithic_nonblocking(engine, name):
    prog = PROGRAMS[name]
    mono = _run(prog, {"tiles": 1})
    tiled4 = _run(prog, {"tiles": 4, "workers": 2}, nonblocking=True)
    assert mono == tiled4


@pytest.mark.parametrize("name", ["mxv", "mxm", "reduce_scalar"])
def test_env_var_configuration(engine, name, monkeypatch):
    prog = PROGRAMS[name]
    mono = _run(prog, {"tiles": 1})
    monkeypatch.setenv("PYGB_TILES", "4")
    monkeypatch.setenv("PYGB_WORKERS", "2")
    assert _run(prog) == mono


@pytest.mark.cpp
@pytest.mark.parametrize("name", ["mxv", "mxm", "ewise_mat"])
def test_tiled_matches_monolithic_cpp(name):
    from repro.jit.cppengine import toolchain_works

    if not toolchain_works():
        pytest.skip("no working C++ toolchain")
    prog = PROGRAMS[name]
    with gb.use_engine("cpp"):
        mono = _run(prog, {"tiles": 1})
        tiled4 = _run(prog, {"tiles": 4, "workers": 2})
    assert mono == tiled4


def test_many_tiles_and_single_worker(engine):
    # more tiles than is sensible, and a serial pool: still bit-identical
    prog = PROGRAMS["mxm"]
    mono = _run(prog, {"tiles": 1})
    assert _run(prog, {"tiles": 16, "workers": 1}) == mono
    assert _run(prog, {"tiles": 7, "workers": 5}) == mono


# ----------------------------------------------------------------------
# merge semantics for scalar reductions
# ----------------------------------------------------------------------


class TestReduceMergeSemantics:
    def test_int_reduce_partitions(self, engine, no_faults):
        a = _mat(30)
        tiling.reset_stats()
        with gb.tiled(tiles=4, workers=2):
            s = gb.reduce(a)
        st = tiling.stats()
        assert st["partitioned"].get("reduce_mat_scalar") == 1
        assert st["merges"].get("fold") == 1
        with gb.tiled(tiles=1):
            assert s == gb.reduce(a)

    def test_float_min_reduce_partitions(self, engine, no_faults):
        f = _mat(31, dtype=np.float64)
        tiling.reset_stats()
        with gb.tiled(tiles=4, workers=2), gb.MinMonoid:
            s = gb.reduce(f)
        assert tiling.stats()["partitioned"].get("reduce_mat_scalar") == 1
        with gb.tiled(tiles=1), gb.MinMonoid:
            assert s == gb.reduce(f)

    def test_float_plus_reduce_forwards(self, engine):
        # NumPy's pairwise summation would be reassociated by the tile
        # boundaries, so the engine must refuse to partition the fold
        with gb.tiled(tiles=4, workers=2):
            f = _mat(32, dtype=np.float64)  # adopts TiledMatrix storage
        tiling.reset_stats()
        with gb.tiled(tiles=4, workers=2):
            s = gb.reduce(f)
        st = tiling.stats()
        assert "reduce_mat_scalar" not in st["partitioned"]
        assert st["forwarded"].get("reduce_mat_scalar", 0) >= 1
        with gb.tiled(tiles=1):
            assert s == gb.reduce(f)  # forwarded, so exactly equal

    def test_exact_fold_table(self):
        assert tiling.exact_fold("Plus", np.int64)
        assert tiling.exact_fold("Times", np.bool_)
        assert tiling.exact_fold("Min", np.float64)
        assert tiling.exact_fold("Max", np.float32)
        assert not tiling.exact_fold("Plus", np.float64)
        assert not tiling.exact_fold("Times", np.float32)


# ----------------------------------------------------------------------
# deterministic counters, ablation, observability
# ----------------------------------------------------------------------


class TestCounters:
    def _workload(self):
        a, u = _mat(33), _vec(34)
        w = gb.Vector(shape=(N,), dtype=np.int64)
        with gb.ArithmeticSemiring:
            w[None] = a @ u
        return gb.reduce(a)

    def test_counters_are_deterministic(self, engine, no_faults):
        snaps = []
        for _ in range(2):
            tiling.reset_stats()
            with gb.tiled(tiles=4, workers=2):
                self._workload()
            snaps.append(tiling.stats())
        assert snaps[0] == snaps[1]
        assert snaps[0]["partitioned_total"] >= 2
        assert snaps[0]["tile_tasks"] >= 8
        assert snaps[0]["tiles_created"] >= 4

    def test_tiles_one_is_a_clean_ablation(self, engine):
        tiling.reset_stats()
        with gb.tiled(tiles=1):
            self._workload()
        st = tiling.stats()
        assert st["tiles_created"] == 0
        assert st["partitioned_total"] == 0
        assert st["tile_tasks"] == 0
        assert st["merges_total"] == 0

    def test_partition_events_reach_stats_aggregator(self, engine, no_faults):
        with gb.tracing() as tr:
            with gb.tiled(tiles=4, workers=2):
                self._workload()
        tiled_stats = tr.stats.snapshot()["tiling"]
        assert tiled_stats["partitioned"] >= 2
        assert tiled_stats["tile_tasks"] >= 8

    def test_bad_env_values_warn_and_fall_back(self, monkeypatch):
        monkeypatch.setenv("PYGB_TILES", "banana")
        with pytest.warns(UserWarning, match="PYGB_TILES"):
            assert tiling.tiles_mode() == "auto"
        monkeypatch.setenv("PYGB_WORKERS", "-3")
        with pytest.warns(UserWarning, match="PYGB_WORKERS"):
            assert tiling.workers_count() >= 1

    def test_context_validation(self):
        with pytest.raises(ValueError):
            gb.tiled(tiles=0)
        with pytest.raises(ValueError):
            gb.tiled(workers=0)
        with gb.tiled(tiles="auto", workers=3):
            assert tiling.tiles_mode() == "auto"
            assert tiling.workers_count() == 3


# ----------------------------------------------------------------------
# the planner's tile_safe gate
# ----------------------------------------------------------------------


class TestFusionGate:
    def _fusable_expr(self):
        with gb.tiled(tiles=4, workers=2):
            a, u = _mat(35), _vec(36)
        assert isinstance(a._store, TiledMatrix) and a._store.ntiles > 1
        with gb.ArithmeticSemiring:
            return gb.apply(gb.UnaryOp("Plus", 1), a @ u)

    def test_tile_safe_rules_still_fuse_over_tiled_operands(self):
        from repro.core.dispatch import make_engine

        expr = self._fusable_expr()
        root = fuse_expression(expr, make_engine("pyjit"))
        assert isinstance(root, Fused)  # the engine fans the fused kernel

    def test_unsafe_rule_refuses_tiled_operands(self):
        from repro.core.dispatch import make_engine

        rule = next(op for op in FUSED_OPS if op.name == "mxv_apply")
        expr = self._fusable_expr()
        object.__setattr__(rule, "tile_safe", False)
        try:
            root = fuse_expression(expr, make_engine("pyjit"))
        finally:
            object.__setattr__(rule, "tile_safe", True)
        assert not isinstance(root, Fused)

    def test_unsafe_rule_still_fuses_monolithic_operands(self):
        from repro.core.dispatch import make_engine

        with gb.tiled(tiles=1):
            a, u = _mat(35), _vec(36)
        with gb.ArithmeticSemiring:
            expr = gb.apply(gb.UnaryOp("Plus", 1), a @ u)
        rule = next(op for op in FUSED_OPS if op.name == "mxv_apply")
        object.__setattr__(rule, "tile_safe", False)
        try:
            root = fuse_expression(expr, make_engine("pyjit"))
        finally:
            object.__setattr__(rule, "tile_safe", True)
        assert isinstance(root, Fused)


# ----------------------------------------------------------------------
# storage layer: splits, blocks, merges
# ----------------------------------------------------------------------


class TestSplitAlgebra:
    def test_split_invariants(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            nrows = int(rng.integers(1, 60))
            lengths = rng.integers(0, 9, nrows)
            indptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
            for ntiles in (1, 2, 3, 4, 7, nrows, nrows + 5):
                s = nnz_balanced_splits(indptr, nrows, ntiles)
                assert s[0] == 0 and s[-1] == nrows
                assert (np.diff(s) > 0).all()
                assert len(s) - 1 <= max(ntiles, 1)

    def test_hub_row_collapses_cuts(self):
        # one row holds all the nnz: every balanced cut lands next to it
        # and np.unique collapses the duplicates instead of emitting
        # empty tiles
        indptr = np.array([0, 0, 100, 100, 100, 100], dtype=np.int64)
        s = nnz_balanced_splits(indptr, 5, 4)
        assert s[0] == 0 and s[-1] == 5
        assert (np.diff(s) > 0).all()

    def test_empty_matrix_splits_by_rows(self):
        indptr = np.zeros(9, dtype=np.int64)
        s = nnz_balanced_splits(indptr, 8, 4)
        assert list(s) == [0, 2, 4, 6, 8]

    def test_round_trip_concat(self):
        m = _mat(40)._store
        t = TiledMatrix.from_monolithic(m, 4)
        assert t.ntiles > 1
        back = concat_mat_parts(t.tiles(), m.ncols)
        np.testing.assert_array_equal(back.indptr, m.indptr)
        np.testing.assert_array_equal(back.indices, m.indices)
        np.testing.assert_array_equal(back.values, m.values)

    def test_row_block_is_zero_copy(self):
        m = _mat(41)._store
        blk = row_block(m, 3, 17)
        assert blk.values.base is not None
        assert blk.nrows == 14 and blk.ncols == m.ncols
        np.testing.assert_array_equal(
            blk.to_dense(), m.to_dense()[3:17]
        )

    def test_vector_slice_concat_round_trip(self):
        v = _vec(42)._store
        splits = np.array([0, 10, 25, N], dtype=np.int64)
        parts = [
            slice_vec_rows(v, int(splits[k]), int(splits[k + 1]))
            for k in range(3)
        ]
        back = concat_vec_parts(parts, N, splits)
        np.testing.assert_array_equal(back.indices, v.indices)
        np.testing.assert_array_equal(back.values, v.values)

    def test_concat_all_empty_parts(self):
        splits = np.array([0, 4, 8], dtype=np.int64)
        parts = [SparseVector.empty(4, np.float64), SparseVector.empty(4, np.float64)]
        back = concat_vec_parts(parts, 8, splits)
        assert back.nvals == 0 and back.dtype == np.float64


class TestTiledMatrix:
    def test_from_monolithic_shares_arrays_and_memos(self):
        m = _mat(43)._store
        m.row_lengths()
        m.degree_stats()
        t = TiledMatrix.from_monolithic(m, 4)
        assert t.indptr is m.indptr and t.values is m.values
        assert t._lengths_cache is m._lengths_cache
        assert t._degree_stats_cache == m._degree_stats_cache

    def test_transpose_is_tiled_and_caches_mutually(self):
        t = TiledMatrix.from_monolithic(_mat(44)._store, 4)
        tt = t.transposed()
        assert isinstance(tt, TiledMatrix) and tt.ntiles > 1
        assert tt.transposed() is t

    def test_astype_and_copy(self):
        t = TiledMatrix.from_monolithic(_mat(45)._store, 4)
        assert t.astype(np.int64) is t
        f = t.astype(np.float64)
        assert isinstance(f, TiledMatrix) and f.indptr is t.indptr
        assert f.splits is t.splits
        c = t.copy()
        assert isinstance(c, TiledMatrix)
        assert c.values is not t.values and c.splits is not t.splits
        np.testing.assert_array_equal(c.values, t.values)

    def test_container_adopts_tiled_storage(self):
        with gb.tiled(tiles=4):
            a = _mat(46)
        assert isinstance(a._store, TiledMatrix)
        assert a._store.ntiles > 1
        with gb.tiled(tiles=1):
            b = _mat(46)
        assert type(b._store) is SparseMatrix

    def test_auto_mode_leaves_small_matrices_monolithic(self):
        with gb.tiled(tiles="auto", workers=4):
            a = _mat(47)  # well below AUTO_TILE_MIN_NNZ
        assert type(a._store) is SparseMatrix


# ----------------------------------------------------------------------
# satellite: constructor-copy aliasing with memoized caches
# ----------------------------------------------------------------------


class TestStoreCacheAliasing:
    def test_matrix_copy_is_independent_after_transposed(self):
        a = _mat(50, n=10, density=0.5)
        before_t = gb.Matrix(a.T)._store.to_dict()
        b = gb.Matrix(a)  # same dtype: astype() would have aliased
        assert b._store is not a._store
        b[0, :] = _vec(51, n=10)
        assert gb.Matrix(a.T)._store.to_dict() == before_t
        assert a._store.to_dict() != b._store.to_dict()

    def test_vector_copy_is_independent(self):
        u = _vec(52, n=10, density=0.9)
        before = u._store.to_dict()
        v = gb.Vector(u)
        assert v._store is not u._store
        v[0:10] = 99
        assert u._store.to_dict() == before

    def test_row_lengths_memo_is_read_only_and_cached(self):
        m = _mat(53)._store
        first = m.row_lengths()
        assert m.row_lengths() is first
        assert not first.flags.writeable
        np.testing.assert_array_equal(first, np.diff(m.indptr))

    def test_degree_stats_match_lengths(self):
        m = _mat(54)._store
        nnz, dmax = m.degree_stats()
        assert nnz == m.nvals
        assert dmax == int(m.row_lengths().max())
        assert m.degree_stats() is m.degree_stats()

    def test_copies_get_fresh_memos(self):
        m = _mat(55)._store
        m.row_lengths()
        c = m.copy()
        assert c._lengths_cache is None
        f = m.astype(np.float64)
        assert f._lengths_cache is None
