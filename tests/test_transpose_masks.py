"""Regression grid: transposed traversals under every mask form.

The schedule layer resolves the *effective* matrix orientation per
direction (push wants the scatter form, dense/pull the gather form, and
``A.T`` flips which is which), so ``ta × mask × complement × replace ×
accumulate`` is exactly the surface where an orientation slip would
corrupt results.  This file pins it two ways:

* against an **independent pure-Python reference** (exact int64
  arithmetic, so fold order cannot blur a wrong answer) for the
  empty-output no-accumulator grid, on every engine and schedule mode;
* **differentially** against the interpreted engine's dense strategy for
  the stateful forms (pre-filled output, ``Replace``, accumulators),
  which exercise the write-back path after a scheduled traversal.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

import repro as gb
from repro import schedule as S
from repro.core.context import use_engine

from helpers import mat_from_dict, random_mat_dict, random_vec_dict, vec_from_dict

N = 20
MODES = ("fixed", "push", "pull", "auto")
SEMIRINGS = {"Plus/Times": ("Plus", "Times"), "Min/Plus": ("Min", "Plus")}

_ADD = {"Plus": lambda x, y: x + y, "Min": min}
_MULT = {"Times": lambda x, y: x * y, "Plus": lambda x, y: x + y}


@pytest.fixture(autouse=True)
def _fresh_schedule_state():
    S.reset_stats()
    yield
    S.reset_stats()


# ----------------------------------------------------------------------
# pure-Python reference (exact integer semantics)
# ----------------------------------------------------------------------


def _ref_spmv(md, ud, *, vxm, ta, add, mult):
    """Sparse ``t = A(.T) @ u`` / ``u @ A(.T)`` as a plain dict: a
    product exists only where both operands store entries; an output
    entry exists only where at least one product does."""
    add_f, mult_f = _ADD[add], _MULT[mult]
    out: dict = {}
    for (i, j), v in md.items():
        if ta:
            i, j = j, i
        if vxm:
            # t[j] (+)= u[i] * A[i, j]
            if i in ud:
                p = mult_f(ud[i], v)
                out[j] = add_f(out[j], p) if j in out else p
        else:
            # t[i] (+)= A[i, j] * u[j]
            if j in ud:
                p = mult_f(v, ud[j])
                out[i] = add_f(out[i], p) if i in out else p
    return out


def _apply_mask(t, mask_d, size, maskkind):
    if maskkind == "none":
        return dict(t)
    true = {i for i, v in mask_d.items() if v}
    accepted = true if maskkind == "mask" else set(range(size)) - true
    return {i: v for i, v in t.items() if i in accepted}


# ----------------------------------------------------------------------
# shared data + DSL runner
# ----------------------------------------------------------------------


def _data(seed=3):
    rng = np.random.default_rng(seed)
    md = random_mat_dict(rng, N, N, density=0.3, dtype=np.int64)
    ud = random_vec_dict(rng, N, density=0.5, dtype=np.int64)
    wd = random_vec_dict(rng, N, density=0.4, dtype=np.int64)
    mask_d = random_vec_dict(rng, N, density=0.6, dtype=bool)
    return md, ud, wd, mask_d


def _run(md, ud, mask_d, *, vxm, ta, maskkind, sr, mode="auto",
         out_d=None, replace=False, accum=None):
    a = mat_from_dict(md, N, N, np.int64)
    u = vec_from_dict(ud, N, np.int64)
    mask = vec_from_dict(mask_d, N, dtype=bool)
    out = (
        vec_from_dict(out_d, N, np.int64)
        if out_d is not None
        else gb.Vector(shape=(N,), dtype=np.int64)
    )
    mat = a.T if ta else a
    add, mult = SEMIRINGS[sr]
    with contextlib.ExitStack() as stack:
        stack.enter_context(S.Scheduled(mode))
        stack.enter_context(gb.Semiring(gb.Monoid(add), mult))
        if replace:
            stack.enter_context(gb.Replace)
        if accum:
            stack.enter_context(gb.Accumulator(accum))
        expr = (u @ mat) if vxm else (mat @ u)
        key = {"none": None, "comp": ~mask, "mask": mask}[maskkind]
        if accum:
            if key is None:
                out[None] += expr
            else:
                out[key] += expr
        elif key is None:
            out[None] = expr
        else:
            out[key] = expr
    return out._store.to_dict()


# ----------------------------------------------------------------------
# reference grid: empty output, no accumulator — every engine and mode
# ----------------------------------------------------------------------


class TestAgainstReference:
    @pytest.mark.parametrize("sr", sorted(SEMIRINGS))
    @pytest.mark.parametrize("vxm", [False, True], ids=["mxv", "vxm"])
    @pytest.mark.parametrize("ta", [False, True], ids=["a", "aT"])
    @pytest.mark.parametrize("maskkind", ["none", "mask", "comp"])
    def test_dense_matches_reference(self, engine, sr, vxm, ta, maskkind):
        md, ud, _, mask_d = _data()
        add, mult = SEMIRINGS[sr]
        expected = _apply_mask(
            _ref_spmv(md, ud, vxm=vxm, ta=ta, add=add, mult=mult),
            mask_d, N, maskkind,
        )
        got = _run(md, ud, mask_d, vxm=vxm, ta=ta, maskkind=maskkind,
                   sr=sr, mode="fixed")
        assert got == expected

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("vxm", [False, True], ids=["mxv", "vxm"])
    @pytest.mark.parametrize("ta", [False, True], ids=["a", "aT"])
    @pytest.mark.parametrize("maskkind", ["mask", "comp"])
    def test_every_mode_matches_reference(self, engine, mode, vxm, ta, maskkind):
        md, ud, _, mask_d = _data()
        expected = _apply_mask(
            _ref_spmv(md, ud, vxm=vxm, ta=ta, add="Plus", mult="Times"),
            mask_d, N, maskkind,
        )
        got = _run(md, ud, mask_d, vxm=vxm, ta=ta, maskkind=maskkind,
                   sr="Plus/Times", mode=mode)
        assert got == expected


# ----------------------------------------------------------------------
# differential grid: stateful write-back forms vs interpreted dense
# ----------------------------------------------------------------------


class TestStatefulWriteback:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("ta", [False, True], ids=["a", "aT"])
    @pytest.mark.parametrize("maskkind", ["mask", "comp"])
    @pytest.mark.parametrize("replace", [False, True], ids=["merge", "replace"])
    def test_prefilled_output(self, engine, mode, ta, maskkind, replace):
        md, ud, wd, mask_d = _data(seed=9)
        kw = dict(vxm=False, ta=ta, maskkind=maskkind, sr="Plus/Times",
                  out_d=wd, replace=replace)
        with use_engine("interpreted"):
            expected = _run(md, ud, mask_d, mode="fixed", **kw)
        got = _run(md, ud, mask_d, mode=mode, **kw)
        assert got == expected

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("ta", [False, True], ids=["a", "aT"])
    @pytest.mark.parametrize("maskkind", ["none", "mask", "comp"])
    def test_accumulated(self, engine, mode, ta, maskkind):
        md, ud, wd, mask_d = _data(seed=13)
        kw = dict(vxm=True, ta=ta, maskkind=maskkind, sr="Min/Plus",
                  out_d=wd, accum="Min")
        with use_engine("interpreted"):
            expected = _run(md, ud, mask_d, mode="fixed", **kw)
        got = _run(md, ud, mask_d, mode=mode, **kw)
        assert got == expected
