"""Unit tests for the dtype system (paper Sec. V: NumPy dtype ↔ C++ POD
mapping and C++ upcasting rules)."""

import numpy as np
import pytest

from repro.exceptions import DomainMismatch
from repro.types import (
    CXX_NAMES,
    POD_TYPES,
    cxx_name,
    default_dtype_for,
    dtype_token,
    normalize_dtype,
    promote,
)


class TestPodTypes:
    def test_exactly_eleven_pod_types(self):
        # "Each of these can be any of the 11 plain old data types" (Sec. V)
        assert len(POD_TYPES) == 11
        assert len(CXX_NAMES) == 11

    def test_every_pod_type_has_a_cxx_name(self):
        for dt in POD_TYPES:
            assert CXX_NAMES[dt]

    @pytest.mark.parametrize(
        "dtype,name",
        [
            (np.bool_, "bool"),
            (np.int8, "int8_t"),
            (np.int64, "int64_t"),
            (np.uint8, "uint8_t"),
            (np.uint64, "uint64_t"),
            (np.float32, "float"),
            (np.float64, "double"),
        ],
    )
    def test_cxx_names(self, dtype, name):
        assert cxx_name(dtype) == name


class TestNormalize:
    def test_python_int_maps_to_int64(self):
        assert normalize_dtype(int) == np.dtype(np.int64)

    def test_python_float_maps_to_float64(self):
        assert normalize_dtype(float) == np.dtype(np.float64)

    def test_python_bool_maps_to_bool(self):
        assert normalize_dtype(bool) == np.dtype(np.bool_)

    def test_string_names_accepted(self):
        assert normalize_dtype("int32") == np.dtype(np.int32)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(DomainMismatch):
            normalize_dtype(np.complex128)

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            normalize_dtype(None)

    def test_token_roundtrip(self):
        for dt in POD_TYPES:
            assert normalize_dtype(dtype_token(dt)) == dt


class TestDefaults:
    def test_int_data_defaults_to_int64(self):
        # "the DSL will fall back to default Python types: 64-bit ints"
        assert default_dtype_for([1, 2, 3]) == np.dtype(np.int64)

    def test_float_data_defaults_to_float64(self):
        assert default_dtype_for([1.5, 2.5]) == np.dtype(np.float64)

    def test_bool_data_stays_bool(self):
        assert default_dtype_for([True, False]) == np.dtype(np.bool_)

    def test_numpy_array_keeps_supported_dtype(self):
        assert default_dtype_for(np.zeros(3, dtype=np.float32)) == np.dtype(np.float32)

    def test_object_data_rejected(self):
        with pytest.raises(DomainMismatch):
            default_dtype_for(["a", object()])


class TestPromotion:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (np.int8, np.int8, np.int8),
            (np.int8, np.int64, np.int64),
            (np.int32, np.float32, np.float64),
            (np.int64, np.float64, np.float64),
            (np.uint8, np.int8, np.int16),
            (np.bool_, np.int32, np.int32),
            (np.float32, np.float64, np.float64),
        ],
    )
    def test_cpp_style_upcast(self, a, b, expected):
        assert promote(a, b) == np.dtype(expected)

    def test_promotion_is_symmetric(self):
        for a in POD_TYPES:
            for b in POD_TYPES:
                assert promote(a, b) == promote(b, a)

    def test_promotion_result_is_pod(self):
        for a in POD_TYPES:
            for b in POD_TYPES:
                assert promote(a, b) in CXX_NAMES
