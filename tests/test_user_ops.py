"""Tests for user-defined operators (paper Sec. VIII future work,
implemented here): registration, DSL usage on every engine, monoid
formation, validation, and test isolation via unregistration."""

import numpy as np
import pytest

import repro as gb
from repro.backend import ops_table
from repro.exceptions import UnknownOperator


@pytest.fixture
def cleanup():
    registered = []
    yield registered
    for name in registered:
        ops_table.unregister_op(name)


class TestRegistration:
    def test_define_binary(self, cleanup):
        op = gb.BinaryOp.define("TAvgOp", lambda a, b: (a + b) / 2)
        cleanup.append("TAvgOp")
        assert op.name == "TAvgOp"
        out = ops_table.apply_binary("TAvgOp", np.array([2.0]), np.array([4.0]))
        assert out[0] == 3.0

    def test_define_unary(self, cleanup):
        gb.UnaryOp.define("TSquare", lambda a: a * a)
        cleanup.append("TSquare")
        out = ops_table.apply_unary("TSquare", np.array([3.0]))
        assert out[0] == 9.0

    def test_vectorized_form(self, cleanup):
        gb.BinaryOp.define("THyp", np.hypot, vectorized=True)
        cleanup.append("THyp")
        out = ops_table.apply_binary("THyp", np.array([3.0]), np.array([4.0]))
        assert out[0] == 5.0

    def test_cannot_shadow_builtin(self):
        with pytest.raises(UnknownOperator):
            gb.BinaryOp.define("Plus", lambda a, b: a)
        with pytest.raises(UnknownOperator):
            gb.UnaryOp.define("Identity", lambda a: a)

    def test_cannot_register_twice(self, cleanup):
        gb.BinaryOp.define("TOnce", lambda a, b: a)
        cleanup.append("TOnce")
        with pytest.raises(UnknownOperator):
            gb.BinaryOp.define("TOnce", lambda a, b: b)

    def test_name_rules(self):
        with pytest.raises(UnknownOperator):
            gb.BinaryOp.define("lowercase", lambda a, b: a)
        with pytest.raises(UnknownOperator):
            gb.BinaryOp.define("Has Spaces", lambda a, b: a)

    def test_bad_kind_rejected(self):
        with pytest.raises(UnknownOperator):
            ops_table.register_binary_op("TBadKind", lambda a, b: a, kind="weird")

    def test_cannot_unregister_builtin(self):
        with pytest.raises(UnknownOperator):
            ops_table.unregister_op("Plus")

    def test_unregister_is_idempotent_for_user_ops(self, cleanup):
        gb.BinaryOp.define("TGone", lambda a, b: a)
        ops_table.unregister_op("TGone")
        ops_table.unregister_op("TGone")  # no error
        with pytest.raises(UnknownOperator):
            ops_table.binary_def("TGone")


class TestDslUsage:
    def test_ewise_with_user_op(self, cleanup, engine):
        op = gb.BinaryOp.define("TAbsDiff", lambda a, b: abs(a - b))
        cleanup.append("TAbsDiff")
        u = gb.Vector([1.0, 9.0])
        v = gb.Vector([4.0, 3.0])
        with op:
            w = gb.Vector(u + v)
        assert list(w.to_numpy()) == [3.0, 6.0]

    def test_apply_with_user_unary(self, cleanup, engine):
        op = gb.UnaryOp.define("TCube", lambda a: a**3)
        cleanup.append("TCube")
        v = gb.Vector([2.0, 3.0])
        out = gb.Vector(gb.apply(op, v))
        assert list(out.to_numpy()) == [8.0, 27.0]

    def test_user_accumulator(self, cleanup, engine):
        op = gb.BinaryOp.define("TKeepBigger", lambda a, b: a if abs(a) > abs(b) else b)
        cleanup.append("TKeepBigger")
        v = gb.Vector([5.0, -1.0])
        w = gb.Vector([-2.0, 4.0])
        with gb.Accumulator(op):
            v[None] += gb.apply(w)
        assert list(v.to_numpy()) == [5.0, 4.0]

    def test_user_monoid_semiring(self, cleanup, engine):
        ops_table.register_binary_op(
            "TSatPlus", lambda a, b: min(a + b, 100.0), associative=True
        )
        cleanup.append("TSatPlus")
        monoid = gb.Monoid("TSatPlus", 0.0)
        a = gb.Matrix([[60.0, 60.0], [1.0, 2.0]])
        u = gb.Vector([1.0, 1.0])
        with gb.Semiring(monoid, "Times"):
            w = gb.Vector(a @ u)
        assert list(w.to_numpy()) == [100.0, 3.0]  # saturated at 100

    def test_user_monoid_reduce(self, cleanup, engine):
        ops_table.register_binary_op(
            "TGcdOp", lambda a, b: int(np.gcd(int(a), int(b))), associative=True
        )
        cleanup.append("TGcdOp")
        v = gb.Vector([12, 18, 30], dtype=np.int64)
        assert gb.reduce(gb.Monoid("TGcdOp", 0), v) == 6

    def test_nonassociative_user_op_cannot_form_monoid(self, cleanup):
        gb.BinaryOp.define("TNotAssoc", lambda a, b: a - 2 * b)
        cleanup.append("TNotAssoc")
        with pytest.raises(UnknownOperator):
            gb.Monoid("TNotAssoc")


@pytest.mark.cpp
class TestCppUserOps:
    @pytest.fixture(autouse=True)
    def _need_compiler(self):
        from repro.jit.cppengine import toolchain_works

        if not toolchain_works():
            pytest.skip("no working C++ toolchain")

    def test_user_binary_on_cpp_engine(self, cleanup):
        op = gb.BinaryOp.define(
            "TCppHypot",
            lambda a, b: (a * a + b * b) ** 0.5,
            cxx="T(std::sqrt(double(({a})*({a}) + ({b})*({b}))))",
        )
        cleanup.append("TCppHypot")
        u = gb.Vector([3.0])
        v = gb.Vector([4.0])
        with gb.use_engine("cpp"), op:
            w = gb.Vector(u + v)
        assert w[0] == pytest.approx(5.0)

    def test_user_unary_on_cpp_engine(self, cleanup):
        op = gb.UnaryOp.define(
            "TCppClamp", lambda a: min(a, 1.0), cxx="((({a}) < T(1)) ? ({a}) : T(1))"
        )
        cleanup.append("TCppClamp")
        v = gb.Vector([0.5, 7.0])
        with gb.use_engine("cpp"):
            out = gb.Vector(gb.apply(op, v))
        assert list(out.to_numpy()) == [0.5, 1.0]

    def test_user_op_without_cxx_degrades_on_cpp(self, cleanup, monkeypatch):
        """A Python-only operator cannot compile to C++; the resilient
        chain degrades to pyjit with a warning, and ``PYGB_JIT_STRICT=1``
        restores the raise."""
        from repro.exceptions import CompilationError, JitFallbackWarning

        op = gb.BinaryOp.define("TNoCxx", lambda a, b: a + b)
        cleanup.append("TNoCxx")
        u = gb.Vector([1.0])
        with gb.use_engine("cpp"), op:
            with pytest.warns(JitFallbackWarning):
                w = gb.Vector(u + u)
        assert w.to_numpy()[0] == 2.0
        monkeypatch.setenv("PYGB_JIT_STRICT", "1")
        with gb.use_engine("cpp"), op:
            with pytest.raises(CompilationError):
                gb.Vector(u + u)
